(** A minimal KVM-style hardware-assisted hypervisor — the "hypervisor
    B" of §IX-A's cross-system scenario.

    The architecture differs from the Xen PV substrate on purpose:
    - guests own their page tables outright (no hypervisor validation
      of guest entries — isolation comes from the EPT instead);
    - the guest's IDT lives in {e guest} memory, so corrupting it harms
      only that guest;
    - the host-critical control structure is the per-VM VMCS, held in
      host memory: corrupting it makes the next VM entry fail and KVM
      kills the VM — the host survives.

    The same intrusion model ("corrupt a descriptor-table handler")
    therefore has a different blast radius here than on Xen, which is
    exactly the kind of finding cross-system injection exists to
    surface. The injector is an ioctl-style host interface
    ({!arbitrary_access}) with the same four actions as the Xen
    prototype, so test scripts port across systems. *)

type vm_state = Vm_running | Vm_crashed of string

type vm = {
  vm_id : int;
  vm_name : string;
  ept_root : Addr.mfn;
  vmcs_mfn : Addr.mfn;  (** host-owned control structure *)
  guest_pages : int;
  guest_cr3_gpa : Nested.gpa;
  idt_gpa : Nested.gpa;  (** the guest's own IDT, in guest memory *)
  mutable state : vm_state;
}

type t

val boot : frames:int -> t
val mem : t -> Phys_mem.t
val console : t -> string list
val vms : t -> vm list

val create_vm : t -> name:string -> pages:int -> vm
(** Guest-physical pages 0..pages-1 mapped through a fresh EPT; a
    kernel-style guest address space built {e by the guest} in its own
    memory; a guest IDT at a fixed guest-physical page; a VMCS in host
    memory. *)

val vmcs_magic : int64
val vmcs_entry_handler : int64
(** The legitimate VMCS fields [vm_entry] checks. *)

val guest_handler : int -> int64
(** The legitimate guest IDT handler for a vector — what
    {!deliver_guest_fault} expects to find in the gate. *)

val vm_entry : t -> vm -> (unit, Errno.t) result
(** Run the VM for a slice: validates the VMCS first; corruption fails
    the entry with [EINVAL] and kills the VM ("KVM: VM-entry failed" —
    the narrative reason lands in {!crash_reason} and the console). *)

val deliver_guest_fault : t -> vm -> vector:int -> (unit, Errno.t) result
(** Deliver an exception through the {e guest's} IDT: a corrupted gate
    panics the guest kernel (the VM), never the host. Fails with
    [EFAULT] when the VM is (or ends up) dead. *)

val crash_reason : vm -> string option
(** Why the VM died, when it has. *)

val guest_read_u64 : t -> vm -> Addr.vaddr -> (int64, Nested.fault) result
val guest_write_u64 : t -> vm -> Addr.vaddr -> int64 -> (unit, Nested.fault) result
(** Guest accesses through the full two-dimensional walk. *)

val gpa_to_maddr : t -> vm -> Nested.gpa -> (Addr.maddr, Nested.fault) result

(** {1 Checkpoint / reset} *)

type checkpoint

val checkpoint : t -> checkpoint
(** Capture the current state as the reset baseline (memory via
    {!Phys_mem.capture_baseline}, plus VM states, the VM list and the
    console). *)

val restore : t -> checkpoint -> int
(** Roll back to the checkpoint in O(frames dirtied); returns the
    number of frames restored. *)

val fork : t -> checkpoint -> t * checkpoint
(** [fork template ck] is a new host in state [ck], its memory shared
    copy-on-write with the template's (which must be
    {!Phys_mem.freeze}d), plus the fork's own reset checkpoint (the VM
    records are fresh copies — resets on one fork never touch another).
    The template checkpoint is only read; it can seed any number of
    forks concurrently. *)

(** {1 The KVM injector (ioctl-style)} *)

type action = Access.action =
  | Arbitrary_read_linear
  | Arbitrary_write_linear
  | Arbitrary_read_physical
  | Arbitrary_write_physical
(** Equal to {!Access.action}: the same four-action surface (and wire
    codes) as the Xen hypercall prototype. *)

val arbitrary_access :
  t -> addr:int64 -> action -> data:bytes -> (bytes option, Errno.t) result
(** The host-side injector: same action surface as the Xen hypercall
    prototype ([linear] resolves through the host direct map). Write
    actions consume [data]; read actions return bytes of
    [Bytes.length data]. *)

(** {1 VMI views (out-of-band, read-only)} *)

val vmcs_hash : t -> vm -> int64
(** FNV-1a of the VM's VMCS frame — the KVM integrity baseline. *)

(** The EPT graph rebuilt from raw table bytes, exactly as hardware
    would walk it — the KVM analogue of {!Vmi.View.pt_graph}. *)
type ept_graph = {
  eg_tables : Addr.mfn list;  (** table frames, root first *)
  eg_leaves : (Nested.gpa * Addr.mfn) list;
      (** (guest-physical address, host frame) per mapped guest page *)
  eg_frames_read : int;  (** table frames visited (the scan cost) *)
}

val ept_graph : t -> vm -> ept_graph

val ept_exposure : t -> vm -> int
(** How many EPT leaves expose memory the VM must not see: host-owned
    frames (EPT tables, VMCSs) or another VM's pages. Zero on a healthy
    system; rises when an intrusion remaps the EPT. *)

val guest_idt_gate : t -> vm -> vector:int -> int64 option
(** The guest's IDT gate handler for [vector], read through the EPT
    without guest cooperation ([None] if the IDT page is unmapped). *)
