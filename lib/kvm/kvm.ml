type vm_state = Vm_running | Vm_crashed of string

type vm = {
  vm_id : int;
  vm_name : string;
  ept_root : Addr.mfn;
  vmcs_mfn : Addr.mfn;
  guest_pages : int;
  guest_cr3_gpa : Nested.gpa;
  idt_gpa : Nested.gpa;
  mutable state : vm_state;
}

type t = { kvm_mem : Phys_mem.t; mutable vm_list : vm list; kvm_console : Buffer.t; mutable next_id : int }

let boot ~frames =
  { kvm_mem = Phys_mem.create ~frames; vm_list = []; kvm_console = Buffer.create 256; next_id = 1 }

let mem t = t.kvm_mem
let vms t = t.vm_list

let log t line =
  Buffer.add_string t.kvm_console "(KVM) ";
  Buffer.add_string t.kvm_console line;
  Buffer.add_char t.kvm_console '\n'

let console t = String.split_on_char '\n' (Buffer.contents t.kvm_console)

let vmcs_magic = 0x564D_4353_2D4F_4B21L (* "VMCS-OK!" *)
let vmcs_entry_handler = 0xFFFF_F000_0BAD_CAFEL
let guest_handler_base = 0xFFFF_8800_000F_0000L
let guest_handler vec = Int64.add guest_handler_base (Int64.of_int (vec * 32))
let idt_gpfn = 2

(* Resolve a guest-physical address on behalf of the host (KVM reads
   guest memory through the EPT like hardware would). *)
let gpa_to_maddr t vm gpa = Nested.ept_translate t.kvm_mem ~ept_root:vm.ept_root gpa

let gpa_frame_exn t vm gpfn =
  match gpa_to_maddr t vm (Addr.maddr_of_mfn gpfn) with
  | Ok ma -> Phys_mem.frame t.kvm_mem (Addr.mfn_of_maddr ma)
  | Error _ -> failwith "Kvm: unmapped guest-physical page"

let create_vm t ~name ~pages =
  if pages < 8 || pages > 512 then invalid_arg "Kvm.create_vm: pages out of range";
  let alloc () = Phys_mem.alloc t.kvm_mem Phys_mem.Xen in
  let ept_root = alloc () in
  (* guest-physical pages 0..pages-1 *)
  for gpfn = 0 to pages - 1 do
    let mfn = Phys_mem.alloc t.kvm_mem (Phys_mem.Dom t.next_id) in
    Nested.map_gpa t.kvm_mem ~alloc ~ept_root (Addr.maddr_of_mfn gpfn) mfn
  done;
  let vmcs_mfn = alloc () in
  (* the guest constructs its own address space in guest memory: table
     pages at the top of the guest-physical space, kernel map of every
     gpfn. Entries hold guest-physical frame numbers. *)
  let l1_count = (pages + Addr.entries_per_table - 1) / Addr.entries_per_table in
  let l4_gpfn = pages - 1 in
  let l3_gpfn = pages - 2 in
  let l2_gpfn = pages - 3 in
  let l1_gpfn j = pages - 4 - j in
  let vm =
    {
      vm_id = t.next_id;
      vm_name = name;
      ept_root;
      vmcs_mfn;
      guest_pages = pages;
      guest_cr3_gpa = Addr.maddr_of_mfn l4_gpfn;
      idt_gpa = Addr.maddr_of_mfn idt_gpfn;
      state = Vm_running;
    }
  in
  t.next_id <- t.next_id + 1;
  let inter gpfn = Pte.make ~mfn:gpfn ~flags:[ Pte.Present; Pte.Rw; Pte.User ] in
  let l4f = gpa_frame_exn t vm (Addr.mfn_of_maddr vm.guest_cr3_gpa) in
  Frame.set_entry l4f (Addr.l4_index Layout.guest_kernel_base) (inter l3_gpfn);
  Frame.set_entry (gpa_frame_exn t vm l3_gpfn) 0 (inter l2_gpfn);
  for j = 0 to l1_count - 1 do
    Frame.set_entry (gpa_frame_exn t vm l2_gpfn) j (inter (l1_gpfn j))
  done;
  for gpfn = 0 to pages - 1 do
    let j = gpfn / Addr.entries_per_table and i = gpfn mod Addr.entries_per_table in
    Frame.set_entry (gpa_frame_exn t vm (l1_gpfn j)) i (inter gpfn)
  done;
  (* the guest's own IDT *)
  let idt_frame = gpa_frame_exn t vm idt_gpfn in
  Frame.fill idt_frame '\000';
  for vec = 0 to 32 do
    Frame.set_u64 idt_frame (Idt.handler_offset vec) (guest_handler vec);
    Frame.set_u64 idt_frame (Idt.handler_offset vec + 8) 0x8000L
  done;
  (* the host-side VMCS *)
  let vmcs = Phys_mem.frame t.kvm_mem vmcs_mfn in
  Frame.set_u64 vmcs 0 vmcs_magic;
  Frame.set_u64 vmcs 8 vmcs_entry_handler;
  Frame.set_u64 vmcs 16 vm.guest_cr3_gpa;
  t.vm_list <- t.vm_list @ [ vm ];
  log t (Printf.sprintf "vm%d (%s): %d guest pages, EPT root mfn 0x%x" vm.vm_id name pages ept_root);
  vm

let crash_reason vm = match vm.state with Vm_running -> None | Vm_crashed why -> Some why

let vm_entry t vm =
  match vm.state with
  | Vm_crashed _ -> Error Errno.EINVAL
  | Vm_running ->
      Phys_mem.observe t.kvm_mem ~consumer:Provenance.Vmcs_check ~mfn:vm.vmcs_mfn ~off:0
        ~len:16;
      let vmcs = Phys_mem.frame t.kvm_mem vm.vmcs_mfn in
      if Frame.get_u64 vmcs 0 <> vmcs_magic || Frame.get_u64 vmcs 8 <> vmcs_entry_handler then begin
        let why = "KVM: VM-entry failed (invalid guest state)" in
        vm.state <- Vm_crashed why;
        log t (Printf.sprintf "vm%d: %s -- VM killed, host continues" vm.vm_id why);
        Error Errno.EINVAL
      end
      else Ok ()

let deliver_guest_fault t vm ~vector =
  match vm.state with
  | Vm_crashed _ -> Error Errno.EFAULT
  | Vm_running -> (
      match gpa_to_maddr t vm vm.idt_gpa with
      | Error _ ->
          vm.state <- Vm_crashed "guest IDT unmapped";
          Error Errno.EFAULT
      | Ok idt_ma ->
          Phys_mem.observe t.kvm_mem ~consumer:Provenance.Idt_gate
            ~mfn:(Addr.mfn_of_maddr idt_ma) ~off:(Idt.handler_offset vector) ~len:8;
          let frame = Phys_mem.frame t.kvm_mem (Addr.mfn_of_maddr idt_ma) in
          let handler = Frame.get_u64 frame (Idt.handler_offset vector) in
          if handler = guest_handler vector then Ok ()
          else begin
            let why =
              Printf.sprintf "guest kernel panic: corrupted gate %d (handler %016Lx)" vector handler
            in
            vm.state <- Vm_crashed why;
            log t (Printf.sprintf "vm%d: %s -- VM killed, host continues" vm.vm_id why);
            Error Errno.EFAULT
          end)

let guest_read_u64 t vm va =
  match
    Nested.translate t.kvm_mem ~ept_root:vm.ept_root ~guest_cr3_gpa:vm.guest_cr3_gpa ~write:false va
  with
  | Ok ma -> Ok (Phys_mem.read_u64 t.kvm_mem ma)
  | Error f -> Error f

let guest_write_u64 t vm va v =
  match
    Nested.translate t.kvm_mem ~ept_root:vm.ept_root ~guest_cr3_gpa:vm.guest_cr3_gpa ~write:true va
  with
  | Ok ma ->
      Phys_mem.write_u64 t.kvm_mem ma v;
      Ok ()
  | Error f -> Error f

(* --- checkpoint / restore ---------------------------------------------- *)

(* The O(dirty) testbed-reset primitive, mirroring [Hv.checkpoint]: the
   memory baseline plus the host-side bookkeeping a trial can mutate.
   The [vm] records themselves survive across resets (scripts hold on
   to them); only their mutable [state] is rolled back. *)
type checkpoint = {
  ck_vms : vm list;
  ck_states : (vm * vm_state) list;
  ck_next_id : int;
  ck_console : string;
}

let checkpoint t =
  Phys_mem.capture_baseline t.kvm_mem;
  {
    ck_vms = t.vm_list;
    ck_states = List.map (fun vm -> (vm, vm.state)) t.vm_list;
    ck_next_id = t.next_id;
    ck_console = Buffer.contents t.kvm_console;
  }

let restore t ck =
  let restored = Phys_mem.reset_to_baseline t.kvm_mem in
  List.iter (fun (vm, st) -> vm.state <- st) ck.ck_states;
  t.vm_list <- ck.ck_vms;
  t.next_id <- ck.ck_next_id;
  Buffer.clear t.kvm_console;
  Buffer.add_string t.kvm_console ck.ck_console;
  restored

(* A new host forked from a frozen template: memory is a
   {!Phys_mem.fork}, and the [vm] records are fresh copies (restore
   mutates [vm.state] in place, so sharing them across forks would let
   one fork's reset clobber another's guests). Returns the fork together
   with its own checkpoint, which references the fork's records — the
   template's checkpoint must keep pointing at the template's. *)
let fork template tck =
  let kvm_mem = Phys_mem.fork (mem template) in
  let vms = List.map (fun (vm, st) -> { vm with state = st }) tck.ck_states in
  let kvm_console = Buffer.create 256 in
  Buffer.add_string kvm_console tck.ck_console;
  let t = { kvm_mem; vm_list = vms; kvm_console; next_id = tck.ck_next_id } in
  let ck =
    {
      ck_vms = vms;
      ck_states = List.map (fun vm -> (vm, vm.state)) vms;
      ck_next_id = tck.ck_next_id;
      ck_console = tck.ck_console;
    }
  in
  (t, ck)

(* --- the ioctl-style injector ------------------------------------------ *)

type action = Access.action =
  | Arbitrary_read_linear
  | Arbitrary_write_linear
  | Arbitrary_read_physical
  | Arbitrary_write_physical

let arbitrary_access t ~addr action ~data =
  let len = Bytes.length data in
  match Access.resolve t.kvm_mem ~addr ~len ~physical:(Access.is_physical action) with
  | None -> Error Errno.EINVAL
  | Some ma ->
      if Access.is_write action then begin
        Phys_mem.write_bytes t.kvm_mem ma data;
        Ok None
      end
      else Ok (Some (Phys_mem.read_bytes t.kvm_mem ma len))

(* --- VMI views (out-of-band, read-only) -------------------------------- *)

let vmcs_hash t vm =
  Phys_mem.observe t.kvm_mem ~consumer:Provenance.Vmcs_check ~mfn:vm.vmcs_mfn ~off:0
    ~len:Addr.page_size;
  Phys_mem.frame_hash t.kvm_mem vm.vmcs_mfn

(* The EPT graph rebuilt from raw table bytes, exactly as hardware
   would walk it — the KVM analogue of [Vmi.View.pt_graph]. *)
type ept_graph = {
  eg_tables : Addr.mfn list;  (** table frames, root first *)
  eg_leaves : (Nested.gpa * Addr.mfn) list;
      (** (guest-physical address, host frame) per mapped guest page *)
  eg_frames_read : int;
}

let level_shift = function 4 -> 39 | 3 -> 30 | 2 -> 21 | _ -> 12

let ept_graph t vm =
  let tables = ref [] and leaves = ref [] and read = ref 0 in
  let rec walk level mfn gpa =
    tables := mfn :: !tables;
    incr read;
    Phys_mem.observe t.kvm_mem ~consumer:Provenance.Ept_walk ~mfn ~off:0 ~len:Addr.page_size;
    Frame.iter_present (Phys_mem.frame_ro t.kvm_mem mfn) (fun i e ->
        let gpa' = Int64.logor gpa (Int64.shift_left (Int64.of_int i) (level_shift level)) in
        let target = Pte.mfn e in
        if level = 1 then begin
          if Phys_mem.is_valid_mfn t.kvm_mem target then leaves := (gpa', target) :: !leaves
        end
        else if Phys_mem.is_valid_mfn t.kvm_mem target then walk (level - 1) target gpa')
  in
  walk 4 vm.ept_root 0L;
  { eg_tables = List.rev !tables; eg_leaves = List.rev !leaves; eg_frames_read = !read }

let ept_exposure t vm =
  let g = ept_graph t vm in
  List.length
    (List.filter
       (fun (_, mfn) ->
         match Phys_mem.owner t.kvm_mem mfn with
         | Phys_mem.Xen -> true (* host-owned: EPT tables, VMCSs, KVM itself *)
         | Phys_mem.Dom id -> id <> vm.vm_id (* another VM's memory *)
         | Phys_mem.Free -> false)
       g.eg_leaves)

let guest_idt_gate t vm ~vector =
  match gpa_to_maddr t vm vm.idt_gpa with
  | Error _ -> None
  | Ok ma ->
      Phys_mem.observe t.kvm_mem ~consumer:Provenance.Idt_gate ~mfn:(Addr.mfn_of_maddr ma)
        ~off:(Idt.handler_offset vector) ~len:8;
      let frame = Phys_mem.frame_ro t.kvm_mem (Addr.mfn_of_maddr ma) in
      Some (Frame.get_u64 frame (Idt.handler_offset vector))
