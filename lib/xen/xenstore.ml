type t = {
  tbl : (string, string) Hashtbl.t;
  mutable tracer : Trace.t option;
}

let create () = { tbl = Hashtbl.create 31; tracer = None }
let set_tracer t tr = t.tracer <- Some tr
let domain_path id key = Printf.sprintf "/local/domain/%d/%s" id key

let own_subtree caller path =
  let prefix = Printf.sprintf "/local/domain/%d/" caller in
  String.length path >= String.length prefix && String.sub path 0 (String.length prefix) = prefix

let may_access ~caller path = caller = 0 || own_subtree caller path

(* Store writes are management-plane inputs to the system, so they are
   boundary events: recorded (and replayed) when they originate outside
   any already-recorded crossing. *)
let trace_write t ~caller ~injected path value =
  match t.tracer with
  | None -> ()
  | Some tr ->
      if Trace.recording tr && Trace.top_level tr then
        Trace.emit tr (Trace.Xenstore_write { caller; injected; path; value })

(* A committed write costs one store transaction of virtual time,
   traced or not; refused writes cost nothing. *)
let charge t =
  match t.tracer with None -> () | Some tr -> Trace.charge tr Vclock.Xenstore_write

let write t ~caller path value =
  if may_access ~caller path then begin
    trace_write t ~caller ~injected:false path value;
    charge t;
    Hashtbl.replace t.tbl path value;
    Ok ()
  end
  else Error Errno.EACCES

let read t ~caller path =
  if not (may_access ~caller path) then Error Errno.EACCES
  else match Hashtbl.find_opt t.tbl path with Some v -> Ok v | None -> Error Errno.ENOENT

let rm t ~caller path =
  if not (may_access ~caller path) then Error Errno.EACCES
  else if Hashtbl.mem t.tbl path then begin
    Hashtbl.remove t.tbl path;
    Ok ()
  end
  else Error Errno.ENOENT

let list_prefix t ~caller prefix =
  if not (may_access ~caller prefix) then Error Errno.EACCES
  else
    Ok
      (List.sort String.compare
         (Hashtbl.fold
            (fun path _ acc ->
              if
                String.length path >= String.length prefix
                && String.sub path 0 (String.length prefix) = prefix
              then path :: acc
              else acc)
            t.tbl []))

let inject_write t path value =
  trace_write t ~caller:(-1) ~injected:true path value;
  charge t;
  Hashtbl.replace t.tbl path value

let dump t = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [])

let restore_dump t entries =
  Hashtbl.reset t.tbl;
  List.iter (fun (k, v) -> Hashtbl.replace t.tbl k v) entries
