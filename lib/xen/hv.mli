(** Hypervisor state: physical memory, CPU, page bookkeeping, domains,
    the in-memory IDT and M2P table, the console ring and crash status.

    Booting installs the structures every exploit interacts with:
    - the IDT page, with Xen's handler entry points registered as the
      only valid handler addresses (a corrupted gate is detectable and
      escalates to a double fault);
    - the machine-to-physical table, written as real memory so guests
      (and attackers scanning memory) read actual bytes;
    - the Xen text frame whose direct-map addresses serve as handler
      entry points. *)

type crash = { reason : string; dump : string list }

type t = {
  version : Version.t;
  mem : Phys_mem.t;
  cpu : Cpu.t;
  pages : Page_info.t;
  mutable domains : Domain.t list;
  idt_mfn : Addr.mfn;
  text_mfn : Addr.mfn;
  m2p_mfns : Addr.mfn array;
  console : Buffer.t;
  xenstore : Xenstore.t;
  sched : Sched.t;
  mutable crashed : crash option;
  mutable next_domid : int;
  mutable extra_hypercalls : (int * string * hypercall_handler) list;
  mutable pt_write_hook : (Addr.mfn -> unit) option;
      (** observer of legitimate, validated page-table writes — how an
          integrity monitor tracks the authorized update stream *)
  trace : Trace.t;
      (** the observability substrate: always-on counters plus the
          optional event ring ({!Trace}) *)
}

and hypercall_handler = t -> Domain.t -> int64 array -> (int64, Errno.t) result

val boot : version:Version.t -> frames:int -> t
(** A fresh hypervisor with no domains yet. *)

val hardened : t -> bool
val log : t -> string -> unit
(** Append a ["(XEN) "]-prefixed line to the console ring. *)

val console_lines : t -> string list
val is_crashed : t -> bool
val panic : t -> reason:string -> dump:string list -> unit
(** Record the crash and print the dump to the console. Idempotent:
    the first panic wins. *)

val find_domain : t -> int -> Domain.t option
val dom0 : t -> Domain.t option
val fresh_domid : t -> int

(** {1 Page allocation} *)

val alloc_xen_page : t -> Addr.mfn
val alloc_domain_page : t -> Domain.t -> Addr.mfn
val release_page : t -> Addr.mfn -> (unit, Errno.t) result
(** Free a frame if no references are held beyond the allocation
    reference ([ref_count = 1], no live type). *)

(** {1 The M2P table} *)

val m2p_set : t -> Addr.mfn -> Addr.pfn option -> unit
val m2p_lookup : t -> Addr.mfn -> Addr.pfn option
val m2p_invalid_entry : int64
val m2p_frame_for : t -> Addr.mfn -> Addr.mfn * int
(** Frame of the M2P table holding the entry for [mfn], and the byte
    offset of that entry inside it. *)

val is_m2p_frame : t -> Addr.mfn -> bool

(** {1 Exception plumbing} *)

val handler_vaddr : t -> int -> Addr.vaddr
(** Entry point Xen registered for vector [v]. *)

val deliver_fault : t -> vector:int -> detail:string -> Cpu.exception_outcome
(** Deliver a hardware exception through the (possibly corrupted) IDT;
    panics the hypervisor on escalation, producing the crash dump of
    §VI-C.1. *)

val notify_pt_write : t -> Addr.mfn -> unit
(** Invoked by the MMU code after every validated entry write. *)

val count_hypercall : t -> number:int -> failed:bool -> unit
(** Bookkeeping the dispatcher calls on every hypercall — a thin view
    over [t.trace]'s always-on counters. *)

val hypercall_stats : t -> (int * int) list
(** (hypercall number, calls) ascending by number. *)

val hypercalls_failed : t -> int
(** How many dispatched hypercalls returned an error. *)

val exhaust_memory : t -> leave:int -> int
(** The Uncontrolled-Memory-Allocation injector hook: grab free frames
    for the Xen heap until at most [leave] remain, returning how many
    were taken. Models a guest-reachable unbounded-allocation path
    without needing the (unknown) vulnerable code. *)

val sched_tick : t -> Sched.outcome
(** Run one scheduler slice. A stall that outlasts the watchdog
    threshold panics the host ("Watchdog timer detected a hard
    LOCKUP"), turning a hang-state intrusion into a crash — the
    deployment-dependent outcome §IX discusses. *)

(** {1 TLB maintenance}

    Forwarded to the boot CPU's software TLB ({!Paging.Tlb}). The
    hypercall paths that edit page tables ({!Mm}) call these, mirroring
    the flushes real Xen issues; the raw injector deliberately does
    {e not}, which is how a stale translation survives — faithfully. *)

val tlb_flush_all : t -> unit
val tlb_invlpg : t -> cr3:Addr.mfn -> Addr.vaddr -> unit

(** {1 Checkpoint / restore}

    An O(dirty) reset primitive for campaign throughput: [checkpoint]
    captures the full hypervisor state (and arms {!Phys_mem}'s dirty
    tracking via {!Phys_mem.capture_baseline}); [restore] rolls every
    piece back, touching only the frames dirtied since.

    Only one checkpoint is live per hypervisor at a time — taking a new
    one rebases the memory baseline. A checkpoint can be restored any
    number of times; each restore hands the system fresh deep copies, so
    the checkpoint itself is immune to mutation by the restored run. *)

type checkpoint

val checkpoint : t -> checkpoint
val restore : t -> checkpoint -> unit

val fork : t -> checkpoint -> t
(** [fork template ck] is a new hypervisor in the state [ck] captured on
    [template], built without re-running boot: physical memory is a
    {!Phys_mem.fork} (frames shared copy-on-write with the template,
    which must have been {!Phys_mem.freeze}d), and CPU, page bookkeeping,
    domains, console, XenStore, scheduler and counters are reconstructed
    from the checkpoint. The checkpoint is only read — it can seed any
    number of forks, concurrently — and remains valid as the fork's own
    [restore] target. *)

(** {1 Hypercall extension table (used by the intrusion injector)} *)

val register_hypercall : t -> number:int -> name:string -> hypercall_handler -> unit
val lookup_hypercall : t -> int -> (string * hypercall_handler) option
