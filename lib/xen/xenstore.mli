(** XenStore: the hierarchical configuration store shared between the
    toolstack (dom0) and guests.

    Real guests react to their XenStore subtree — most prominently
    [memory/target], which drives the balloon driver. That makes the
    management interface an attack surface of its own: the paper's §IX
    names "activities originating from the management interface" as the
    next intrusion models to support, and this substrate carries them.

    Permissions are the essential ones: dom0 reads and writes
    everything; a guest only its own [/local/domain/<id>] subtree. The
    injector hook bypasses them, planting exactly the erroneous state a
    compromised toolstack (or a XenStore bug) would produce. *)

type t

val create : unit -> t

val set_tracer : t -> Trace.t -> unit
(** Record store writes as boundary events while the tracer's ring is
    enabled (management-plane inputs are part of a trial's replayable
    input stream). *)

val domain_path : int -> string -> string
(** [domain_path 3 "memory/target"] is ["/local/domain/3/memory/target"]. *)

val write : t -> caller:int -> string -> string -> (unit, Errno.t) result
(** Dom0 may write anywhere; other domains only below their own
    subtree ([EACCES] otherwise). *)

val read : t -> caller:int -> string -> (string, Errno.t) result
(** Dom0 reads everything; other domains their own subtree.
    [ENOENT] for missing nodes. *)

val rm : t -> caller:int -> string -> (unit, Errno.t) result
val list_prefix : t -> caller:int -> string -> (string list, Errno.t) result
(** Paths under a prefix the caller may read, sorted. *)

val inject_write : t -> string -> string -> unit
(** The injector hook: write bypassing all permission checks. *)

val dump : t -> (string * string) list
(** Every node, sorted by path (hypervisor-side inspection). *)

val restore_dump : t -> (string * string) list -> unit
(** Replace the whole store with a previous {!dump} (checkpoint
    restore). *)
