type t = V4_6 | V4_8 | V4_13

let all = [ V4_6; V4_8; V4_13 ]
let to_string = function V4_6 -> "4.6" | V4_8 -> "4.8" | V4_13 -> "4.13"

let banner v =
  let patch = match v with V4_6 -> "4.6.0" | V4_8 -> "4.8.0" | V4_13 -> "4.13.0" in
  Printf.sprintf "Xen-%s x86_64 debug=y Not tainted" patch

let of_string = function
  | "4.6" | "v4.6" | "V4_6" -> Some V4_6
  | "4.8" | "v4.8" | "V4_8" -> Some V4_8
  | "4.13" | "v4.13" | "V4_13" -> Some V4_13
  | _ -> None

let xsa148_fixed = function V4_6 -> false | V4_8 | V4_13 -> true
let xsa182_fixed = function V4_6 -> false | V4_8 | V4_13 -> true
let xsa212_fixed = function V4_6 -> false | V4_8 | V4_13 -> true
let hardened_address_space = function V4_6 | V4_8 -> false | V4_13 -> true
let grant_frame_ownership_checked = function V4_6 -> false | V4_8 | V4_13 -> true
let venom_fixed = function V4_6 -> false | V4_8 | V4_13 -> true
let dm_handler_validation = function V4_6 | V4_8 -> false | V4_13 -> true
let pp ppf v = Format.pp_print_string ppf (to_string v)
