type ptype = PGT_none | PGT_writable | PGT_l1 | PGT_l2 | PGT_l3 | PGT_l4 | PGT_seg

type info = {
  mutable owner : Phys_mem.owner;
  mutable ptype : ptype;
  mutable type_count : int;
  mutable ref_count : int;
  mutable validated : bool;
  mutable pinned : bool;
}

type t = {
  infos : info array;
  (* Bumped on every type/ownership mutation (see [touch]); monitors use
     it to tell whether cached type-dependent scans are still valid.
     [restore] puts it back to the checkpointed value — sound because
     the whole array returns to exactly that state. *)
  mutable gen : int;
  (* frames mutated since the last [checkpoint], so [restore] replays
     O(touched) entries instead of the whole array *)
  touched : Bytes.t;
  mutable touched_list : int list;
}

let fresh () =
  { owner = Phys_mem.Free; ptype = PGT_none; type_count = 0; ref_count = 0;
    validated = false; pinned = false }

let create ~frames =
  {
    infos = Array.init frames (fun _ -> fresh ());
    gen = 0;
    touched = Bytes.make frames '\000';
    touched_list = [];
  }

let get t mfn =
  if mfn < 0 || mfn >= Array.length t.infos then invalid_arg "Page_info.get: bad mfn";
  t.infos.(mfn)

let generation t = t.gen

let mark t mfn =
  if Bytes.unsafe_get t.touched mfn = '\000' then begin
    Bytes.unsafe_set t.touched mfn '\001';
    t.touched_list <- mfn :: t.touched_list
  end

let touch t mfn =
  t.gen <- t.gen + 1;
  mark t mfn

let table_level = function
  | PGT_l1 -> Some 1
  | PGT_l2 -> Some 2
  | PGT_l3 -> Some 3
  | PGT_l4 -> Some 4
  | PGT_none | PGT_writable | PGT_seg -> None

let ptype_of_level = function
  | 1 -> PGT_l1
  | 2 -> PGT_l2
  | 3 -> PGT_l3
  | 4 -> PGT_l4
  | _ -> invalid_arg "Page_info.ptype_of_level"

let ptype_code = function
  | PGT_none -> 0
  | PGT_writable -> 1
  | PGT_l1 -> 2
  | PGT_l2 -> 3
  | PGT_l3 -> 4
  | PGT_l4 -> 5
  | PGT_seg -> 6

let ptype_to_string = function
  | PGT_none -> "none"
  | PGT_writable -> "writable"
  | PGT_l1 -> "l1_table"
  | PGT_l2 -> "l2_table"
  | PGT_l3 -> "l3_table"
  | PGT_l4 -> "l4_table"
  | PGT_seg -> "seg_desc"

let get_page t mfn =
  let i = get t mfn in
  mark t mfn;
  i.ref_count <- i.ref_count + 1

let put_page t mfn =
  let i = get t mfn in
  if i.ref_count <= 0 then invalid_arg "Page_info.put_page: refcount underflow";
  mark t mfn;
  i.ref_count <- i.ref_count - 1

let get_page_type t mfn ptype =
  let i = get t mfn in
  if i.ptype = ptype && i.type_count > 0 then (
    touch t mfn;
    i.type_count <- i.type_count + 1;
    Ok ())
  else if i.type_count = 0 then (
    touch t mfn;
    i.ptype <- ptype;
    i.type_count <- 1;
    i.validated <- false;
    Ok ())
  else Error Errno.EBUSY

let put_page_type t mfn =
  let i = get t mfn in
  if i.type_count <= 0 then invalid_arg "Page_info.put_page_type: type count underflow";
  touch t mfn;
  i.type_count <- i.type_count - 1;
  if i.type_count = 0 then (
    i.validated <- false;
    i.pinned <- false)

let set_validated t mfn v =
  mark t mfn;
  (get t mfn).validated <- v

type checkpoint = { ck_infos : info array; ck_gen : int }

let checkpoint t =
  (* also resets the touched set: from here on it records divergence
     from exactly this checkpoint, which is what [restore] replays *)
  List.iter (fun mfn -> Bytes.set t.touched mfn '\000') t.touched_list;
  t.touched_list <- [];
  {
    ck_infos =
      Array.map
        (fun i ->
          { owner = i.owner; ptype = i.ptype; type_count = i.type_count;
            ref_count = i.ref_count; validated = i.validated; pinned = i.pinned })
        t.infos;
    ck_gen = t.gen;
  }

(* Restore by field assignment: existing [info] records stay aliased
   from wherever they are held. *)
let restore t ck =
  if Array.length ck.ck_infos <> Array.length t.infos then
    invalid_arg "Page_info.restore: size mismatch";
  (* only frames mutated since [checkpoint] can differ *)
  List.iter
    (fun mfn ->
      let s = ck.ck_infos.(mfn) in
      let i = t.infos.(mfn) in
      i.owner <- s.owner;
      i.ptype <- s.ptype;
      i.type_count <- s.type_count;
      i.ref_count <- s.ref_count;
      i.validated <- s.validated;
      i.pinned <- s.pinned;
      Bytes.set t.touched mfn '\000')
    t.touched_list;
  t.touched_list <- [];
  (* state is back to exactly the checkpointed one, so the generation
     returns too: equal generations mean equal type state *)
  t.gen <- ck.ck_gen

(* A full instance built from a checkpoint — the forked-testbed path,
   where [restore] does not apply (a fresh [create] has an empty touched
   set, so replaying it would copy nothing). *)
let of_checkpoint ck =
  {
    infos =
      Array.map
        (fun i ->
          { owner = i.owner; ptype = i.ptype; type_count = i.type_count;
            ref_count = i.ref_count; validated = i.validated; pinned = i.pinned })
        ck.ck_infos;
    gen = ck.ck_gen;
    touched = Bytes.make (Array.length ck.ck_infos) '\000';
    touched_list = [];
  }

let counts_consistent t =
  Array.for_all
    (fun i -> i.type_count >= 0 && i.ref_count >= 0 && ((not i.pinned) || i.type_count > 0))
    t.infos
