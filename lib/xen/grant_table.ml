type gt_version = V1 | V2

type entry = {
  mutable permit : bool;
  mutable grantee : int;
  mutable g_mfn : Addr.mfn;
  mutable readonly : bool;
  mutable in_use : int;
}

type map_record = {
  handle : int;
  mapper : int;
  granter : int;
  gref : int;
  mapped_mfn : Addr.mfn;
  map_readonly : bool;
}

type t = {
  mutable gt_version : gt_version;
  entries : entry array;
  mutable status : Addr.mfn list;
  mutable shared : Addr.mfn list;
  maptrack : (int, map_record) Hashtbl.t;
  mutable next_handle : int;
}

module Wire = struct
  type wire_entry = { w_flags : int; w_domid : int; w_gfn : int }

  let entry_size = 8
  let gtf_permit_access = 1
  let gtf_readonly = 2
  let gtf_in_use = 4

  let read frame gref =
    let off = gref * entry_size in
    let word = Frame.get_u64 frame off in
    {
      w_flags = Int64.to_int (Int64.logand word 0xFFFFL);
      w_domid = Int64.to_int (Int64.logand (Int64.shift_right_logical word 16) 0xFFFFL);
      w_gfn = Int64.to_int (Int64.logand (Int64.shift_right_logical word 32) 0xFFFF_FFFFL);
    }

  let write frame gref { w_flags; w_domid; w_gfn } =
    let off = gref * entry_size in
    let word =
      Int64.logor
        (Int64.of_int (w_flags land 0xFFFF))
        (Int64.logor
           (Int64.shift_left (Int64.of_int (w_domid land 0xFFFF)) 16)
           (Int64.shift_left (Int64.of_int w_gfn) 32))
    in
    Frame.set_u64 frame off word
end

let status_frame_count = 1

let create ~grefs =
  if grefs <= 0 then invalid_arg "Grant_table.create";
  {
    gt_version = V1;
    entries =
      Array.init grefs (fun _ ->
          { permit = false; grantee = -1; g_mfn = -1; readonly = true; in_use = 0 });
    status = [];
    shared = [];
    maptrack = Hashtbl.create 31;
    next_handle = 0;
  }

let version t = t.gt_version
let entry t gref = if gref >= 0 && gref < Array.length t.entries then Some t.entries.(gref) else None
let status_frames t = t.status
let shared_frames t = t.shared
let set_shared t frames = t.shared <- frames
let memory_backed t = t.shared <> []
let any_mapped t = Hashtbl.length t.maptrack > 0

(* Locate the shared frame and in-frame gref for a reference. *)
let wire_slot t gref =
  if gref < 0 then None
  else
    let per_frame = Addr.page_size / Wire.entry_size in
    let frame_index = gref / per_frame in
    match List.nth_opt t.shared frame_index with
    | Some mfn -> Some (mfn, gref mod per_frame)
    | None -> None

let fresh_handle t =
  let handle = t.next_handle in
  t.next_handle <- handle + 1;
  handle

let map_memory t ~mem ~granter ~mapper ~gref ~gfn_to_mfn =
  match wire_slot t gref with
  | None -> Error Errno.EINVAL
  | Some (frame_mfn, slot) ->
      let frame = Phys_mem.frame mem frame_mfn in
      (* the hypervisor is about to *interpret* these guest-writable
         bytes: record the causal edge so attribution can tie a forged
         wire entry back to whoever wrote it *)
      Phys_mem.observe mem ~consumer:Provenance.Gnt_check ~mfn:frame_mfn
        ~off:(slot * Wire.entry_size) ~len:Wire.entry_size;
      let e = Wire.read frame slot in
      if e.Wire.w_flags land Wire.gtf_permit_access = 0 then Error Errno.ENOENT
      else if e.Wire.w_domid <> mapper then Error Errno.EPERM
      else (
        match gfn_to_mfn e.Wire.w_gfn with
        | None -> Error Errno.EINVAL
        | Some mapped_mfn ->
            Wire.write frame slot { e with Wire.w_flags = e.Wire.w_flags lor Wire.gtf_in_use };
            let handle = fresh_handle t in
            let record =
              {
                handle;
                mapper;
                granter;
                gref;
                mapped_mfn;
                map_readonly = e.Wire.w_flags land Wire.gtf_readonly <> 0;
              }
            in
            Hashtbl.replace t.maptrack handle record;
            Ok record)

let unmap_memory t ~mem ~handle =
  match Hashtbl.find_opt t.maptrack handle with
  | None -> Error Errno.ENOENT
  | Some record ->
      Hashtbl.remove t.maptrack handle;
      (match wire_slot t record.gref with
      | Some (frame_mfn, slot) ->
          let frame = Phys_mem.frame mem frame_mfn in
          let e = Wire.read frame slot in
          Wire.write frame slot
            { e with Wire.w_flags = e.Wire.w_flags land lnot Wire.gtf_in_use }
      | None -> ());
      Ok ()

let set_version t ~alloc ~release v =
  if any_mapped t then Error Errno.EBUSY
  else
    match (t.gt_version, v) with
    | V1, V1 | V2, V2 -> Ok ()
    | V1, V2 ->
        t.status <- List.init status_frame_count (fun _ -> alloc ());
        t.gt_version <- V2;
        Ok ()
    | V2, V1 ->
        (* The correct behaviour XSA-387 violated: status pages go back
           to Xen when leaving v2. *)
        List.iter release t.status;
        t.status <- [];
        t.gt_version <- V1;
        Ok ()

let grant_access t ~gref ~grantee ~mfn ~readonly =
  match entry t gref with
  | None -> Error Errno.EINVAL
  | Some e ->
      if e.in_use > 0 then Error Errno.EBUSY
      else (
        e.permit <- true;
        e.grantee <- grantee;
        e.g_mfn <- mfn;
        e.readonly <- readonly;
        Ok ())

let end_access t ~gref =
  match entry t gref with
  | None -> Error Errno.EINVAL
  | Some e ->
      if e.in_use > 0 then Error Errno.EBUSY
      else (
        e.permit <- false;
        e.grantee <- -1;
        e.g_mfn <- -1;
        Ok ())

let map t ~granter ~mapper ~gref =
  match entry t gref with
  | None -> Error Errno.EINVAL
  | Some e ->
      if not e.permit then Error Errno.ENOENT
      else if e.grantee <> mapper then Error Errno.EPERM
      else begin
        e.in_use <- e.in_use + 1;
        let handle = t.next_handle in
        t.next_handle <- handle + 1;
        let record =
          { handle; mapper; granter; gref; mapped_mfn = e.g_mfn; map_readonly = e.readonly }
        in
        Hashtbl.replace t.maptrack handle record;
        Ok record
      end

let unmap t ~handle =
  match Hashtbl.find_opt t.maptrack handle with
  | None -> Error Errno.ENOENT
  | Some record ->
      Hashtbl.remove t.maptrack handle;
      (match entry t record.gref with
      | Some e when e.in_use > 0 -> e.in_use <- e.in_use - 1
      | Some _ | None -> ());
      Ok ()

let mappings t = Hashtbl.fold (fun _ r acc -> r :: acc) t.maptrack []
let find_mapping t ~handle = Hashtbl.find_opt t.maptrack handle
let active_grants t = Array.fold_left (fun acc e -> if e.permit then acc + 1 else acc) 0 t.entries

(* Structural copy for hypervisor checkpointing: every mutable cell is
   duplicated so the checkpoint is immune to later mutation. *)
let deep_copy t =
  {
    gt_version = t.gt_version;
    entries =
      Array.map
        (fun e ->
          { permit = e.permit; grantee = e.grantee; g_mfn = e.g_mfn; readonly = e.readonly;
            in_use = e.in_use })
        t.entries;
    status = t.status;
    shared = t.shared;
    maptrack = Hashtbl.copy t.maptrack;
    next_handle = t.next_handle;
  }
