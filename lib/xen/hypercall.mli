(** The hypercall table and dispatcher — the guest/hypervisor interface
    every intrusion model in this study names as its interaction
    interface.

    Calls carry typed arguments; [number_of_call] gives the real Xen
    hypercall numbers for reference and for the extension table, which
    is how the prototype injector registers its new hypercall
    ("small changes in the hypercalls table had to be done to add the
    new hypercall", §V-B). *)

type mmuext =
  | Pin_l4_table of Addr.mfn
  | Pin_l3_table of Addr.mfn
  | Pin_l2_table of Addr.mfn
  | Pin_l1_table of Addr.mfn
  | Unpin_table of Addr.mfn
  | New_baseptr of Addr.mfn

type grant_op =
  | Gnttab_setup_table of { nr_frames : int }
  | Gnttab_set_version of Grant_table.gt_version
  | Gnttab_grant_access of { gref : int; grantee : int; pfn : Addr.pfn; readonly : bool }
  | Gnttab_end_access of { gref : int }
  | Gnttab_map of { granter : int; gref : int }
  | Gnttab_unmap of { granter : int; handle : int }

type evtchn_op =
  | Evtchn_alloc_unbound of { allowed_remote : int }
  | Evtchn_bind_interdomain of { remote_dom : int; remote_port : int }
  | Evtchn_bind_virq of { virq : int }
  | Evtchn_send of { port : int }
  | Evtchn_close of { port : int }

type call =
  | Mmu_update of (int64 * Pte.t) list
  | Mmuext_op of mmuext
  | Update_va_mapping of { va : Addr.vaddr; value : Pte.t }
  | Memory_exchange of Memory_exchange.request
  | Decrease_reservation of Addr.pfn list
  | Grant_table_op of grant_op
  | Event_channel_op of evtchn_op
  | Console_io of string
  | Raw of { number : int; args : int64 array }
      (** dispatched through the extension table (injector) *)

val number_of_call : call -> int
(** Real Xen hypercall numbers (mmu_update = 1, memory_op = 12, ...). *)

val name_of_call : call -> string

val encode_call : call -> string
(** The binary serialization recorded as a traced hypercall's payload
    ({!Trace.event.Hypercall}); [decode_call] inverts it, which is what
    lets a replay driver re-issue a recorded call. *)

val decode_call : string -> call option

val grant_op_index : grant_op -> int
val evtchn_op_index : evtchn_op -> int
(** Constructor indices, as recorded in trace [Grant_op]/[Evtchn_op]
    events. *)

val dispatch : Hv.t -> Domain.t -> call -> (int64, Errno.t) result
(** Execute a hypercall on behalf of a domain. Never raises on guest
    input; a crashed hypervisor refuses everything with [EINVAL].

    Every dispatch feeds the hypervisor's trace: counters always
    (number + failure), and — while the ring is recording — an entry
    record (with the full {!encode_call} payload at top level, or a
    payload-less record for nested calls) plus an exit record with the
    return value. *)

val dispatch_unit : Hv.t -> Domain.t -> call -> (unit, Errno.t) result
val return_code : (int64, Errno.t) result -> int
(** The guest-visible return value ([-EFAULT] style). *)
