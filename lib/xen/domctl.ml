type destroy_report = { freed : int; zombie : Addr.mfn list }

let pause hv dom = Sched.remove_vcpu hv.Hv.sched ~dom:dom.Domain.id

let unpause hv dom =
  match Sched.vcpu_of hv.Hv.sched ~dom:dom.Domain.id with
  | Some _ -> Error Errno.EBUSY
  | None ->
      ignore (Sched.add_vcpu hv.Hv.sched ~dom:dom.Domain.id);
      Ok ()

(* Release a Xen-side helper frame whose type was set manually by the
   builder (the per-domain M2P chain) or by grant-table setup. *)
let release_xen_helper hv mfn =
  Page_info.touch hv.Hv.pages mfn;
  let info = Page_info.get hv.Hv.pages mfn in
  info.Page_info.ptype <- Page_info.PGT_none;
  info.Page_info.type_count <- 0;
  ignore (Hv.release_page hv mfn)

let destroy hv dom =
  if dom.Domain.privileged then Error Errno.EPERM
  else begin
    let id = dom.Domain.id in
    ignore (Sched.remove_vcpu hv.Hv.sched ~dom:id);
    List.iter
      (fun port -> ignore (Event_channel.close dom.Domain.events port))
      (Event_channel.bound_ports dom.Domain.events);
    (* Drop the root references: cr3, pin, and the builder's promotion.
       The last one cascades through the whole address space,
       un-accounting every mapping the domain held. *)
    let l4 = dom.Domain.l4_mfn in
    if Phys_mem.is_valid_mfn hv.Hv.mem l4 then begin
      let info = Page_info.get hv.Hv.pages l4 in
      dom.Domain.l4_mfn <- -1;
      info.Page_info.pinned <- false;
      for _ = 1 to info.Page_info.type_count do
        Mm.put_table_type hv dom l4
      done
    end;
    (* Xen-owned helper frames handed to (or built for) this domain. *)
    let m2p_chain =
      List.filter (fun mfn -> Phys_mem.owner hv.Hv.mem mfn = Phys_mem.Xen) dom.Domain.pt_pages
    in
    List.iter (release_xen_helper hv) m2p_chain;
    List.iter (release_xen_helper hv) (Grant_table.shared_frames dom.Domain.grant);
    Grant_table.set_shared dom.Domain.grant [];
    List.iter (release_xen_helper hv) (Grant_table.status_frames dom.Domain.grant);
    (* Give the frames back; anything still referenced from outside
       stays as a zombie page. *)
    let freed = ref 0 and zombie = ref [] in
    List.iter
      (fun pfn ->
        match Domain.mfn_of_pfn dom pfn with
        | None -> ()
        | Some mfn -> (
            Domain.set_p2m dom pfn None;
            Hv.m2p_set hv mfn None;
            match Hv.release_page hv mfn with
            | Ok () -> incr freed
            | Error _ -> zombie := mfn :: !zombie))
      (Domain.populated_pfns dom);
    (* Delist and clean the management plane. *)
    hv.Hv.domains <- List.filter (fun d -> d.Domain.id <> id) hv.Hv.domains;
    (match
       Xenstore.list_prefix hv.Hv.xenstore ~caller:0 (Printf.sprintf "/local/domain/%d/" id)
     with
    | Ok paths -> List.iter (fun p -> ignore (Xenstore.rm hv.Hv.xenstore ~caller:0 p)) paths
    | Error _ -> ());
    Hv.log hv
      (Printf.sprintf "d%d destroyed: %d frames freed%s" id !freed
         (match !zombie with
         | [] -> ""
         | z -> Printf.sprintf ", %d zombie pages" (List.length z)));
    Ok { freed = !freed; zombie = List.rev !zombie }
  end

let list_domains hv =
  List.map
    (fun d -> (d.Domain.id, d.Domain.name, List.length (Domain.populated_pfns d)))
    hv.Hv.domains
