type crash = { reason : string; dump : string list }

type t = {
  version : Version.t;
  mem : Phys_mem.t;
  cpu : Cpu.t;
  pages : Page_info.t;
  mutable domains : Domain.t list;
  idt_mfn : Addr.mfn;
  text_mfn : Addr.mfn;
  m2p_mfns : Addr.mfn array;
  console : Buffer.t;
  xenstore : Xenstore.t;
  sched : Sched.t;
  mutable crashed : crash option;
  mutable next_domid : int;
  mutable extra_hypercalls : (int * string * hypercall_handler) list;
  mutable pt_write_hook : (Addr.mfn -> unit) option;
  trace : Trace.t;
}

and hypercall_handler = t -> Domain.t -> int64 array -> (int64, Errno.t) result

let hardened t = Version.hardened_address_space t.version

let log t line =
  Buffer.add_string t.console "(XEN) ";
  Buffer.add_string t.console line;
  Buffer.add_char t.console '\n';
  Trace.note_console t.trace;
  if Trace.recording t.trace then
    Trace.emit t.trace
      (Trace.Console { len = String.length line; digest = Trace.digest line })

let console_lines t = String.split_on_char '\n' (Buffer.contents t.console)
let is_crashed t = t.crashed <> None

let panic t ~reason ~dump =
  if not (is_crashed t) then begin
    if Trace.recording t.trace then Trace.emit t.trace (Trace.Panic { reason });
    t.crashed <- Some { reason; dump };
    List.iter (log t) dump;
    log t (Printf.sprintf "Panic on CPU 0: %s" reason);
    log t "****************************************";
    log t "Reboot in five seconds..."
  end

let find_domain t id = List.find_opt (fun d -> d.Domain.id = id) t.domains
let dom0 t = List.find_opt (fun d -> d.Domain.privileged) t.domains

let fresh_domid t =
  let id = t.next_domid in
  t.next_domid <- id + 1;
  id

let mark_alloc t mfn owner =
  Page_info.touch t.pages mfn;
  let info = Page_info.get t.pages mfn in
  info.Page_info.owner <- owner;
  info.Page_info.ptype <- Page_info.PGT_none;
  info.Page_info.type_count <- 0;
  info.Page_info.ref_count <- 1;
  info.Page_info.validated <- false;
  info.Page_info.pinned <- false

let alloc_xen_page t =
  let mfn = Phys_mem.alloc t.mem Phys_mem.Xen in
  mark_alloc t mfn Phys_mem.Xen;
  mfn

let alloc_domain_page t dom =
  let owner = Domain.owned dom in
  let mfn = Phys_mem.alloc t.mem owner in
  mark_alloc t mfn owner;
  mfn

let release_page t mfn =
  let info = Page_info.get t.pages mfn in
  if info.Page_info.type_count > 0 then Error Errno.EBUSY
  else if info.Page_info.ref_count > 1 then Error Errno.EBUSY
  else begin
    Page_info.touch t.pages mfn;
    info.Page_info.owner <- Phys_mem.Free;
    info.Page_info.ref_count <- 0;
    info.Page_info.validated <- false;
    info.Page_info.pinned <- false;
    Phys_mem.free t.mem mfn;
    Ok ()
  end

let notify_pt_write t mfn = match t.pt_write_hook with Some hook -> hook mfn | None -> ()

(* The hypercall bookkeeping is a thin view over the trace counters
   (which are always on), so the historical API keeps working. *)
let count_hypercall t ~number ~failed = Trace.note_hypercall t.trace ~number ~failed
let hypercall_stats t = Trace.Counters.hypercalls (Trace.counters t.trace)
let hypercalls_failed t = Trace.Counters.hypercalls_failed (Trace.counters t.trace)

let exhaust_memory t ~leave =
  let taken = ref 0 in
  while Phys_mem.free_frames t.mem > max 0 leave do
    ignore (alloc_xen_page t);
    incr taken
  done;
  if !taken > 0 then
    log t (Printf.sprintf "memory pressure: %d frames vanished into the Xen heap" !taken);
  !taken

(* --- M2P table ------------------------------------------------------- *)

let m2p_invalid_entry = 0x5555_5555_5555_5555L
let entries_per_m2p_frame = Addr.page_size / 8

let m2p_frame_for t mfn =
  let idx = mfn / entries_per_m2p_frame in
  if idx < 0 || idx >= Array.length t.m2p_mfns then invalid_arg "Hv.m2p_frame_for: bad mfn";
  (t.m2p_mfns.(idx), mfn mod entries_per_m2p_frame * 8)

let m2p_set t mfn pfn =
  let frame_mfn, off = m2p_frame_for t mfn in
  let value = match pfn with Some p -> Int64.of_int p | None -> m2p_invalid_entry in
  Frame.set_u64 (Phys_mem.frame t.mem frame_mfn) off value;
  Phys_mem.taint t.mem ~mfn:frame_mfn ~off ~len:8;
  (* an authorized hypervisor-internal update: integrity monitors track
     it through the same stream as validated page-table writes *)
  notify_pt_write t frame_mfn

let m2p_lookup t mfn =
  let frame_mfn, off = m2p_frame_for t mfn in
  let v = Frame.get_u64 (Phys_mem.frame_ro t.mem frame_mfn) off in
  if v = m2p_invalid_entry then None else Some (Int64.to_int v)

let is_m2p_frame t mfn = Array.exists (fun m -> m = mfn) t.m2p_mfns

(* --- exceptions ------------------------------------------------------ *)

let handler_vaddr t vector =
  Layout.directmap_of_maddr
    (Int64.add (Addr.maddr_of_mfn t.text_mfn) (Int64.of_int (vector * 32)))

let crash_dump t ~first_vector ~bad_handler ~detail =
  [
    "*** DOUBLE FAULT ***";
    Printf.sprintf "----[ %s ]----" (Version.banner t.version);
    Printf.sprintf "CPU:    0";
    Printf.sprintf "RIP:    %04x:[<%016Lx>] %s" Idt.xen_code_selector bad_handler detail;
    Printf.sprintf "RFLAGS: 0000000000010086   CONTEXT: hypervisor";
    Printf.sprintf "rax: %016Lx   rbx: 0000000000000000   rcx: 0000000000000000" bad_handler;
    Printf.sprintf "cr3: %016Lx   cr2: 0000000000000000" (Addr.maddr_of_mfn t.idt_mfn);
    "Xen call trace:";
    Printf.sprintf "   [<%016Lx>] do_double_fault+0x0/0x0" bad_handler;
    Printf.sprintf "   (corrupted gate for vector %d)" first_vector;
  ]

let deliver_fault t ~vector ~detail =
  Trace.charge t.trace Vclock.Fault_delivery;
  let outcome = Cpu.deliver_exception t.cpu ~vector in
  let double = match outcome with Cpu.Handled _ -> false | _ -> true in
  Trace.note_fault t.trace ~double;
  if Trace.recording t.trace then begin
    let escalation =
      match outcome with
      | Cpu.Handled _ -> 0
      | Cpu.Double_fault_panic _ -> 1
      | Cpu.Triple_fault -> 2
    in
    Trace.emit t.trace (Trace.Fault { vector; escalation })
  end;
  (match outcome with
  | Cpu.Handled _ -> ()
  | Cpu.Double_fault_panic { first_vector; bad_handler } ->
      panic t ~reason:"DOUBLE FAULT -- system shutdown"
        ~dump:(crash_dump t ~first_vector ~bad_handler ~detail)
  | Cpu.Triple_fault ->
      panic t ~reason:"TRIPLE FAULT -- machine reset" ~dump:[ "*** TRIPLE FAULT ***" ]);
  outcome

(* --- scheduling ------------------------------------------------------- *)

let sched_tick t =
  if is_crashed t then Sched.Idle
  else begin
    let outcome = Sched.tick t.sched in
    (match outcome with
    | Sched.Cpu_stalled reason when Sched.watchdog_fired t.sched ->
        panic t ~reason:"Watchdog timer detected a hard LOCKUP"
          ~dump:
            [
              "*** WATCHDOG TIMEOUT ***";
              Printf.sprintf "----[ %s ]----" (Version.banner t.version);
              Printf.sprintf "CPU0 stuck for %ds: %s" (Sched.stalled_slices t.sched) reason;
            ]
    | Sched.Cpu_stalled _ | Sched.Scheduled _ | Sched.Idle -> ());
    outcome
  end

(* --- TLB maintenance -------------------------------------------------- *)

let tlb_flush_all t = Cpu.tlb_flush_all t.cpu
let tlb_invlpg t ~cr3 va = Cpu.tlb_invlpg t.cpu ~cr3 va

(* --- checkpoint / restore --------------------------------------------- *)

type checkpoint = {
  ck_domains : Domain.t list;
  ck_next_domid : int;
  ck_crashed : crash option;
  ck_console_len : int;
  ck_xenstore : (string * string) list;
  ck_sched : Sched.checkpoint;
  ck_extra : (int * string * hypercall_handler) list;
  ck_hook : (Addr.mfn -> unit) option;
  ck_counters : Trace.Counters.snapshot;
  ck_vts : int64;  (* virtual clock, restored with the machine *)
  ck_pages : Page_info.checkpoint;
  ck_handlers : (Addr.vaddr * string) list;
}

let checkpoint t =
  Phys_mem.capture_baseline t.mem;
  {
    ck_domains = List.map Domain.deep_copy t.domains;
    ck_next_domid = t.next_domid;
    ck_crashed = t.crashed;
    ck_console_len = Buffer.length t.console;
    ck_xenstore = Xenstore.dump t.xenstore;
    ck_sched = Sched.checkpoint t.sched;
    ck_extra = t.extra_hypercalls;
    ck_hook = t.pt_write_hook;
    ck_counters = Trace.Counters.snapshot (Trace.counters t.trace);
    ck_vts = Trace.vts t.trace;
    ck_pages = Page_info.checkpoint t.pages;
    ck_handlers = Cpu.handlers_dump t.cpu;
  }

let restore t ck =
  ignore (Phys_mem.reset_to_baseline t.mem : int);
  Page_info.restore t.pages ck.ck_pages;
  (* each restore hands out fresh copies, so the checkpoint itself is
     immune to mutation by the restored system *)
  t.domains <- List.map Domain.deep_copy ck.ck_domains;
  t.next_domid <- ck.ck_next_domid;
  t.crashed <- ck.ck_crashed;
  Buffer.truncate t.console ck.ck_console_len;
  Xenstore.restore_dump t.xenstore ck.ck_xenstore;
  Sched.restore t.sched ck.ck_sched;
  t.extra_hypercalls <- ck.ck_extra;
  t.pt_write_hook <- ck.ck_hook;
  (* the counters and virtual clock roll back with the machine; the
     trace ring does not — a recording deliberately spans resets,
     which replay re-executes *)
  Trace.Counters.restore (Trace.counters t.trace) ck.ck_counters;
  Vclock.set (Trace.vclock t.trace) ck.ck_vts;
  Cpu.handlers_restore t.cpu ck.ck_handlers;
  (* reset_to_baseline bumped the generation, but flush anyway so the
     restored machine starts from a cold TLB like a rebooted host *)
  Cpu.tlb_flush_all t.cpu

(* --- COW forking ------------------------------------------------------ *)

(* A new hypervisor forked from a frozen template: physical memory is a
   {!Phys_mem.fork} (frames shared copy-on-write), everything else is
   rebuilt from the template's checkpoint — the same state [restore]
   would produce, minus the boot. The checkpoint is only read, so one
   frozen template serves concurrent forks on separate domains; the
   fork's own [restore ck] works unchanged because its memory is born
   with an armed baseline equal to the checkpointed state. *)
let fork (template : t) ck =
  let mem = Phys_mem.fork template.mem in
  let trace = Trace.create () in
  let cpu =
    Cpu.create ~tracer:trace mem ~hardened:(Version.hardened_address_space template.version)
  in
  let console = Buffer.create 1024 in
  Buffer.add_substring console (Buffer.contents template.console) 0 ck.ck_console_len;
  let xenstore = Xenstore.create () in
  Xenstore.set_tracer xenstore trace;
  Xenstore.restore_dump xenstore ck.ck_xenstore;
  let sched = Sched.create () in
  Sched.restore sched ck.ck_sched;
  let t =
    {
      version = template.version;
      mem;
      cpu;
      pages = Page_info.of_checkpoint ck.ck_pages;
      domains = List.map Domain.deep_copy ck.ck_domains;
      idt_mfn = template.idt_mfn;
      text_mfn = template.text_mfn;
      m2p_mfns = Array.copy template.m2p_mfns;
      console;
      xenstore;
      sched;
      crashed = ck.ck_crashed;
      next_domid = ck.ck_next_domid;
      extra_hypercalls = ck.ck_extra;
      pt_write_hook = ck.ck_hook;
      trace;
    }
  in
  Trace.Counters.restore (Trace.counters trace) ck.ck_counters;
  (* the fork starts at the template's checkpointed virtual time under
     the template's live cost model, so a pooled trial reads the same
     timestamps a fresh boot would *)
  Vclock.set (Trace.vclock trace) ck.ck_vts;
  Vclock.set_model (Trace.vclock trace) (Vclock.model (Trace.vclock template.trace));
  Vclock.set_attached (Trace.vclock trace) (Vclock.attached (Trace.vclock template.trace));
  Cpu.set_idt cpu t.idt_mfn;
  Cpu.handlers_restore cpu ck.ck_handlers;
  t

(* --- hypercall extension table --------------------------------------- *)

let register_hypercall t ~number ~name handler =
  let others = List.filter (fun (n, _, _) -> n <> number) t.extra_hypercalls in
  t.extra_hypercalls <- (number, name, handler) :: others

let lookup_hypercall t number =
  List.find_map
    (fun (n, name, h) -> if n = number then Some (name, h) else None)
    t.extra_hypercalls

(* --- boot ------------------------------------------------------------ *)

let boot ~version ~frames =
  let mem = Phys_mem.create ~frames in
  let trace = Trace.create () in
  let cpu = Cpu.create ~tracer:trace mem ~hardened:(Version.hardened_address_space version) in
  let pages = Page_info.create ~frames in
  let m2p_frame_count = (frames + entries_per_m2p_frame - 1) / entries_per_m2p_frame in
  (* Allocation order is deterministic: text, IDT, then the M2P frames. *)
  let text_mfn = Phys_mem.alloc mem Phys_mem.Xen in
  let idt_mfn = Phys_mem.alloc mem Phys_mem.Xen in
  let m2p_mfns = Array.init m2p_frame_count (fun _ -> Phys_mem.alloc mem Phys_mem.Xen) in
  let t =
    {
      version;
      mem;
      cpu;
      pages;
      domains = [];
      idt_mfn;
      text_mfn;
      m2p_mfns;
      console = Buffer.create 1024;
      xenstore = Xenstore.create ();
      sched = Sched.create ();
      crashed = None;
      next_domid = 0;
      extra_hypercalls = [];
      pt_write_hook = None;
      trace;
    }
  in
  Xenstore.set_tracer t.xenstore trace;
  mark_alloc t text_mfn Phys_mem.Xen;
  mark_alloc t idt_mfn Phys_mem.Xen;
  Array.iter (fun mfn -> mark_alloc t mfn Phys_mem.Xen) m2p_mfns;
  (* Every M2P entry starts invalid. *)
  for mfn = 0 to frames - 1 do
    m2p_set t mfn None
  done;
  (* Install the IDT: Xen handler entry points live in the text frame. *)
  Idt.init mem idt_mfn;
  Cpu.set_idt cpu idt_mfn;
  let install vector name =
    let handler = handler_vaddr t vector in
    Cpu.register_handler cpu handler name;
    Idt.write_gate mem idt_mfn vector
      { Idt.handler; selector = Idt.xen_code_selector; gate_present = true }
  in
  install 0 "divide_error";
  install 3 "int3";
  install 6 "invalid_op";
  install Idt.vector_double_fault "double_fault";
  install Idt.vector_general_protection "general_protection";
  install Idt.vector_page_fault "page_fault";
  install 32 "irq0";
  log t (Printf.sprintf "Xen version %s (x86_64, PV) booted" (Version.to_string version));
  log t (Printf.sprintf "System RAM: %d KiB across %d frames" (frames * Addr.page_size / 1024) frames);
  t
