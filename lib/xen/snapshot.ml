type t = {
  s_name : string;
  s_pages : int;
  s_privileged : bool;
  s_data : (Addr.pfn * bytes) list;
  s_xenstore : (string * string) list;
}

(* Pages the builder owns: start_info (rebuilt with fresh pt_base) and
   the page-table pages (host-specific). Everything else is payload.
   [pt_set] is the domain's pt_pages as a hash set, built once per
   capture/restore — a per-pfn List.mem would make both quadratic. *)
let pt_set dom =
  let set = Hashtbl.create 16 in
  List.iter (fun mfn -> Hashtbl.replace set mfn ()) dom.Domain.pt_pages;
  set

let is_payload_in set dom pfn =
  pfn <> dom.Domain.start_info_pfn
  &&
  match Domain.mfn_of_pfn dom pfn with
  | Some mfn -> not (Hashtbl.mem set mfn)
  | None -> false

let capture hv dom =
  let pts = pt_set dom in
  let data =
    List.filter_map
      (fun pfn ->
        if is_payload_in pts dom pfn then
          Option.map
            (fun mfn -> (pfn, Frame.to_bytes (Phys_mem.frame_ro hv.Hv.mem mfn)))
            (Domain.mfn_of_pfn dom pfn)
        else None)
      (Domain.populated_pfns dom)
  in
  let prefix = Printf.sprintf "/local/domain/%d/" dom.Domain.id in
  let xenstore =
    match Xenstore.list_prefix hv.Hv.xenstore ~caller:0 prefix with
    | Ok paths ->
        List.filter_map
          (fun path ->
            match Xenstore.read hv.Hv.xenstore ~caller:0 path with
            | Ok value ->
                let key =
                  String.sub path (String.length prefix) (String.length path - String.length prefix)
                in
                Some (key, value)
            | Error _ -> None)
          paths
    | Error _ -> []
  in
  {
    s_name = dom.Domain.name;
    s_pages = Domain.max_pfn dom;
    s_privileged = dom.Domain.privileged;
    s_data = data;
    s_xenstore = xenstore;
  }

let restore hv snap =
  let dom =
    Builder.create_domain hv ~name:snap.s_name ~privileged:snap.s_privileged ~pages:snap.s_pages
  in
  let pts = pt_set dom in
  List.iter
    (fun (pfn, bytes) ->
      (* only replay into pages the fresh builder considers payload:
         table pages of the new layout must not be clobbered *)
      if is_payload_in pts dom pfn then
        match Domain.mfn_of_pfn dom pfn with
        | Some mfn -> Frame.write_bytes (Phys_mem.frame hv.Hv.mem mfn) 0 bytes
        | None -> ())
    snap.s_data;
  List.iter
    (fun (key, value) ->
      Xenstore.inject_write hv.Hv.xenstore (Xenstore.domain_path dom.Domain.id key) value)
    snap.s_xenstore;
  Hv.log hv
    (Printf.sprintf "d%d restored from snapshot of %s (%d data pages)" dom.Domain.id snap.s_name
       (List.length snap.s_data));
  dom

let data_bytes t = List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 t.s_data
