type account = {
  acc_target : Addr.mfn;
  acc_kind : [ `Data_ro | `Data_rw | `Table of int | `Linear ];
}

let safe_flags version ~level =
  let base = [ Pte.Accessed; Pte.Dirty ] in
  if level = 4 && not (Version.xsa182_fixed version) then Pte.Rw :: base else base

let table_in_use info =
  Page_info.table_level info.Page_info.ptype <> None && info.Page_info.type_count > 0

(* A foreign frame may be mapped when the owner granted it to us and the
   grant is currently mapped (maptrack), or when we are privileged. *)
let foreign_map_allowed hv dom ~target ~write =
  if dom.Domain.privileged then true
  else
    List.exists
      (fun granter ->
        List.exists
          (fun r ->
            r.Grant_table.mapper = dom.Domain.id
            && r.Grant_table.mapped_mfn = target
            && ((not write) || not r.Grant_table.map_readonly))
          (Grant_table.mappings granter.Domain.grant))
      hv.Hv.domains

let validate_l1 hv dom e =
  let target = Pte.mfn e in
  if not (Phys_mem.is_valid_mfn hv.Hv.mem target) then Error Errno.EINVAL
  else
    let info = Page_info.get hv.Hv.pages target in
    let write = Pte.test Pte.Rw e in
    match info.Page_info.owner with
    | Phys_mem.Free -> Error Errno.EINVAL
    | Phys_mem.Xen ->
        (* Guests may read the M2P and map their own grant-table
           frames; nothing else of Xen's, ever. *)
        if (not write) && Hv.is_m2p_frame hv target then
          Ok (Some { acc_target = target; acc_kind = `Data_ro })
        else if List.mem target (Grant_table.shared_frames dom.Domain.grant) then
          Ok (Some { acc_target = target; acc_kind = (if write then `Data_rw else `Data_ro) })
        else if
          (* The grant-ownership bug: 4.6 only checks that the target is
             *some* grant-table frame, not that it is the mapper's own —
             so a guest can map a co-resident domain's wire entries
             writable and forge grants. *)
          (not (Version.grant_frame_ownership_checked hv.Hv.version))
          && List.exists
               (fun d -> List.mem target (Grant_table.shared_frames d.Domain.grant))
               hv.Hv.domains
        then Ok (Some { acc_target = target; acc_kind = (if write then `Data_rw else `Data_ro) })
        else Error Errno.EPERM
    | Phys_mem.Dom id when id = dom.Domain.id ->
        if write then
          if table_in_use info then Error Errno.EPERM
            (* no writable mappings of page tables: the direct-paging rule *)
          else Ok (Some { acc_target = target; acc_kind = `Data_rw })
        else Ok (Some { acc_target = target; acc_kind = `Data_ro })
    | Phys_mem.Dom _ ->
        if foreign_map_allowed hv dom ~target ~write then
          Ok (Some { acc_target = target; acc_kind = (if write then `Data_rw else `Data_ro) })
        else Error Errno.EPERM

let validate_upper hv dom ~level e =
  let target = Pte.mfn e in
  if not (Phys_mem.is_valid_mfn hv.Hv.mem target) then Error Errno.EINVAL
  else
    let info = Page_info.get hv.Hv.pages target in
    let owned = info.Page_info.owner = Domain.owned dom in
    let same_level = info.Page_info.ptype = Page_info.ptype_of_level level in
    if same_level && info.Page_info.type_count > 0 then
      (* Linear (recursive) page-table link: legal read-only only. *)
      if Pte.test Pte.Rw e then Error Errno.EPERM
      else if not owned then Error Errno.EPERM
      else Ok (Some { acc_target = target; acc_kind = `Linear })
    else if not owned then Error Errno.EPERM
    else Ok (Some { acc_target = target; acc_kind = `Table (level - 1) })

let validate_entry hv dom ~level ~table_mfn e =
  ignore table_mfn;
  if not (Pte.is_present e) then Ok None
  else
    match level with
    | 1 -> validate_l1 hv dom e
    | 2 ->
        if Pte.test Pte.Pse e && Version.xsa148_fixed hv.Hv.version then
          (* The check XSA-148 was missing: PV guests get no superpages. *)
          Error Errno.EINVAL
        else validate_upper hv dom ~level e
    | 3 | 4 -> validate_upper hv dom ~level e
    | _ -> Error Errno.EINVAL

(* --- accounting ------------------------------------------------------ *)

(* A [Page_info] type transition (PGT_none <-> writable/table), fed to
   the trace: the counter always, a ring record while recording. *)
let trace_ptype hv mfn ~from_type ~to_type =
  let tr = hv.Hv.trace in
  Trace.note_page_type tr;
  if Trace.recording tr then
    Trace.emit tr
      (Trace.Page_type
         {
           mfn;
           from_type = Page_info.ptype_code from_type;
           to_type = Page_info.ptype_code to_type;
         })

let rec commit_account hv dom = function
  | None -> Ok ()
  | Some { acc_target; acc_kind } -> (
      match acc_kind with
      | `Data_ro | `Linear ->
          Page_info.get_page hv.Hv.pages acc_target;
          Ok ()
      | `Data_rw -> (
          match Page_info.get_page_type hv.Hv.pages acc_target Page_info.PGT_writable with
          | Ok () ->
              if (Page_info.get hv.Hv.pages acc_target).Page_info.type_count = 1 then
                trace_ptype hv acc_target ~from_type:Page_info.PGT_none
                  ~to_type:Page_info.PGT_writable;
              Page_info.get_page hv.Hv.pages acc_target;
              Ok ()
          | Error e -> Error e)
      | `Table level -> (
          match promote hv dom ~level acc_target with
          | Ok () ->
              Page_info.get_page hv.Hv.pages acc_target;
              Ok ()
          | Error e -> Error e))

and put_writable_type hv mfn =
  Page_info.put_page_type hv.Hv.pages mfn;
  if (Page_info.get hv.Hv.pages mfn).Page_info.type_count = 0 then
    trace_ptype hv mfn ~from_type:Page_info.PGT_writable ~to_type:Page_info.PGT_none

and uncommit_account hv dom = function
  | None -> ()
  | Some { acc_target; acc_kind } -> (
      Page_info.put_page hv.Hv.pages acc_target;
      match acc_kind with
      | `Data_ro | `Linear -> ()
      | `Data_rw -> put_writable_type hv acc_target
      | `Table _ -> put_table_type hv dom acc_target)

(* Classify an existing (present) entry so it can be un-accounted. The
   classification mirrors what commit did when the entry was installed. *)
and classify_existing hv ~level e =
  if not (Pte.is_present e) then None
  else
    let target = Pte.mfn e in
    if not (Phys_mem.is_valid_mfn hv.Hv.mem target) then None
    else
      let info = Page_info.get hv.Hv.pages target in
      if level >= 2 then
        if info.Page_info.ptype = Page_info.ptype_of_level level then
          Some { acc_target = target; acc_kind = `Linear }
        else Some { acc_target = target; acc_kind = `Table (level - 1) }
      else if Pte.test Pte.Rw e then Some { acc_target = target; acc_kind = `Data_rw }
      else Some { acc_target = target; acc_kind = `Data_ro }

and unaccount_existing hv dom ~level e =
  match classify_existing hv ~level e with
  | None -> ()
  | Some { acc_target; acc_kind } -> (
      Page_info.put_page hv.Hv.pages acc_target;
      match acc_kind with
      | `Data_ro | `Linear -> ()
      | `Data_rw -> put_writable_type hv acc_target
      | `Table _ -> put_table_type hv dom acc_target)

(* --- promotion / demotion ------------------------------------------- *)

and promote hv dom ~level mfn =
  let pages = hv.Hv.pages in
  (* type fields below are assigned directly, not via get_page_type *)
  Page_info.touch pages mfn;
  let info = Page_info.get pages mfn in
  let wanted = Page_info.ptype_of_level level in
  if info.Page_info.ptype = wanted && info.Page_info.type_count > 0 then begin
    info.Page_info.type_count <- info.Page_info.type_count + 1;
    Ok ()
  end
  else if info.Page_info.type_count > 0 then Error Errno.EBUSY
  else if info.Page_info.owner <> Domain.owned dom then Error Errno.EPERM
  else begin
    (* Mark in progress so recursive self-references resolve as linear. *)
    info.Page_info.ptype <- wanted;
    info.Page_info.type_count <- 1;
    info.Page_info.validated <- false;
    let frame = Phys_mem.frame hv.Hv.mem mfn in
    let committed = ref [] in
    let rollback () =
      List.iter (fun acc -> uncommit_account hv dom acc) !committed;
      info.Page_info.ptype <- Page_info.PGT_none;
      info.Page_info.type_count <- 0
    in
    let rec entries index =
      if index >= Addr.entries_per_table then Ok ()
      else if level = 4 && Layout.is_xen_l4_slot index then entries (index + 1)
      else
        let () =
          Phys_mem.observe hv.Hv.mem ~consumer:Provenance.Page_type_check ~mfn
            ~off:(8 * index) ~len:8
        in
        let e = Frame.get_entry frame index in
        if not (Pte.is_present e) then entries (index + 1)
        else if
          level = 4 && not (Layout.guest_may_own_l4_slot ~hardened:(Hv.hardened hv) index)
        then Error Errno.EPERM
        else
          match validate_entry hv dom ~level ~table_mfn:mfn e with
          | Error err -> Error err
          | Ok acc -> (
              match commit_account hv dom acc with
              | Error err -> Error err
              | Ok () ->
                  committed := acc :: !committed;
                  entries (index + 1))
    in
    match entries 0 with
    | Ok () ->
        info.Page_info.validated <- true;
        trace_ptype hv mfn ~from_type:Page_info.PGT_none ~to_type:wanted;
        Ok ()
    | Error err ->
        rollback ();
        Error err
  end

and put_table_type hv dom mfn =
  let pages = hv.Hv.pages in
  let info = Page_info.get pages mfn in
  let level = Page_info.table_level info.Page_info.ptype in
  let old_ptype = info.Page_info.ptype in
  Page_info.put_page_type pages mfn;
  if info.Page_info.type_count = 0 then
    trace_ptype hv mfn ~from_type:old_ptype ~to_type:Page_info.PGT_none;
  if info.Page_info.type_count = 0 then
    match level with
    | None -> ()
    | Some level ->
        (* Last type reference gone: the table stops being a table and
           its entries stop pinning their targets. *)
        let frame = Phys_mem.frame hv.Hv.mem mfn in
        for index = 0 to Addr.entries_per_table - 1 do
          if not (level = 4 && Layout.is_xen_l4_slot index) then begin
            Phys_mem.observe hv.Hv.mem ~consumer:Provenance.Page_type_check ~mfn
              ~off:(8 * index) ~len:8;
            let e = Frame.get_entry frame index in
            if Pte.is_present e then unaccount_existing hv dom ~level e
          end
        done

(* --- TLB flushing ----------------------------------------------------- *)

(* What a successful page-table write must do to the software TLB.
   Real Xen flushes after mmu_update batches and uses UVMF_INVLPG for
   update_va_mapping; the raw injector path skips this module entirely,
   which is exactly how it leaves stale translations behind. *)
type flush = Flush_none | Flush_all | Flush_page of Addr.mfn * Addr.vaddr

let do_flush hv = function
  | Flush_none -> ()
  | Flush_all -> Hv.tlb_flush_all hv
  | Flush_page (cr3, va) -> Hv.tlb_invlpg hv ~cr3 va

(* --- mmu_update ------------------------------------------------------ *)

let locate_table hv dom ptr =
  let ma = Int64.logand ptr (Int64.lognot 7L) in
  let table_mfn = Addr.mfn_of_maddr ma in
  if not (Phys_mem.is_valid_mfn hv.Hv.mem table_mfn) then Error Errno.EINVAL
  else
    let info = Page_info.get hv.Hv.pages table_mfn in
    let owned =
      info.Page_info.owner = Domain.owned dom
      || (dom.Domain.privileged && match info.Page_info.owner with Phys_mem.Dom _ -> true | _ -> false)
    in
    match Page_info.table_level info.Page_info.ptype with
    | Some level when owned && info.Page_info.type_count > 0 && info.Page_info.validated ->
        Ok (table_mfn, level, Int64.to_int (Int64.logand ptr 0xFFFL) / 8)
    | Some _ | None -> if owned then Error Errno.EINVAL else Error Errno.EPERM

let apply_one ?(flush = Flush_all) hv dom ~ptr ~value =
  match locate_table hv dom ptr with
  | Error e -> Error e
  | Ok (table_mfn, level, index) ->
      if level = 4 && not (Layout.guest_may_own_l4_slot ~hardened:(Hv.hardened hv) index) then
        Error Errno.EPERM
      else
        let frame = Phys_mem.frame hv.Hv.mem table_mfn in
        Phys_mem.observe hv.Hv.mem ~consumer:Provenance.Page_type_check ~mfn:table_mfn
          ~off:(8 * index) ~len:8;
        let old_e = Frame.get_entry frame index in
        let fast_path =
          Pte.is_present old_e && Pte.is_present value
          && Pte.mfn old_e = Pte.mfn value
          && Pte.flags_equal_modulo ~ignore:(safe_flags hv.Hv.version ~level) old_e value
        in
        if fast_path then begin
          (* The XSA-182 bug lives here: on 4.6 this path accepts an RW
             upgrade of an L4 entry without revalidation. *)
          Trace.charge hv.Hv.trace Vclock.Pte_install;
          Frame.set_entry frame index value;
          Phys_mem.taint hv.Hv.mem ~mfn:table_mfn ~off:(8 * index) ~len:8;
          Hv.notify_pt_write hv table_mfn;
          do_flush hv flush;
          Ok ()
        end
        else
          (* Full path: validate and account the new entry, then retire
             the old one. *)
          (match validate_entry hv dom ~level ~table_mfn value with
          | Error e -> Error e
          | Ok acc -> (
              match commit_account hv dom acc with
              | Error e -> Error e
              | Ok () ->
                  if Pte.is_present old_e then unaccount_existing hv dom ~level old_e;
                  Trace.charge hv.Hv.trace Vclock.Pte_install;
                  Frame.set_entry frame index value;
                  Phys_mem.taint hv.Hv.mem ~mfn:table_mfn ~off:(8 * index) ~len:8;
                  Hv.notify_pt_write hv table_mfn;
                  do_flush hv flush;
                  Ok ()))

let mmu_update ?flush hv dom ~updates =
  if Hv.is_crashed hv then Error Errno.EINVAL
  else
    let rec go n = function
      | [] -> Ok n
      | (ptr, value) :: rest -> (
          let cmd = Int64.to_int (Int64.logand ptr 3L) in
          if cmd <> 0 then Error Errno.ENOSYS
          else
            match apply_one ?flush hv dom ~ptr ~value with
            | Ok () -> go (n + 1) rest
            | Error e -> Error e)
    in
    go 0 updates

(* --- update_va_mapping ----------------------------------------------- *)

let update_va_mapping hv dom ~va value =
  let path = Paging.walk_path hv.Hv.mem ~cr3:dom.Domain.l4_mfn va in
  let l1_step =
    List.find_opt
      (fun s -> s.Paging.level = 1 || (s.Paging.level = 2 && Pte.test Pte.Pse s.Paging.entry))
      path
  in
  match l1_step with
  | Some { Paging.level = 1; table_mfn; index; _ } ->
      let ptr = Int64.add (Addr.maddr_of_mfn table_mfn) (Int64.of_int (8 * index)) in
      (* UVMF_INVLPG: a single-entry update needs only a targeted flush *)
      let flush = Flush_page (dom.Domain.l4_mfn, va) in
      Result.map (fun (_ : int) -> ()) (mmu_update ~flush hv dom ~updates:[ (ptr, value) ])
  | Some _ -> Error Errno.EINVAL (* superpage leaf: not updatable entry-wise *)
  | None -> Error Errno.EINVAL

(* --- pinning / cr3 ---------------------------------------------------- *)

let pin_table hv dom ~level mfn =
  match promote hv dom ~level mfn with
  | Error e -> Error e
  | Ok () ->
      (Page_info.get hv.Hv.pages mfn).Page_info.pinned <- true;
      Ok ()

let unpin_table hv dom mfn =
  let info = Page_info.get hv.Hv.pages mfn in
  if not info.Page_info.pinned then Error Errno.EINVAL
  else begin
    info.Page_info.pinned <- false;
    put_table_type hv dom mfn;
    Ok ()
  end

let set_baseptr hv dom mfn =
  match promote hv dom ~level:4 mfn with
  | Error e -> Error e
  | Ok () ->
      let old = dom.Domain.l4_mfn in
      dom.Domain.l4_mfn <- mfn;
      if Phys_mem.is_valid_mfn hv.Hv.mem old && old <> mfn then put_table_type hv dom old;
      (* a CR3 load flushes all non-global translations *)
      Hv.tlb_flush_all hv;
      Ok ()

(* --- decrease_reservation -------------------------------------------- *)

let decrease_reservation hv dom pfns =
  let rec go n = function
    | [] -> Ok n
    | pfn :: rest -> (
        match Domain.mfn_of_pfn dom pfn with
        | None -> Error Errno.EINVAL
        | Some mfn -> (
            match Hv.release_page hv mfn with
            | Error e -> Error e
            | Ok () ->
                Domain.set_p2m dom pfn None;
                Hv.m2p_set hv mfn None;
                go (n + 1) rest))
  in
  go 0 pfns
