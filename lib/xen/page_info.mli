(** Per-frame hypervisor bookkeeping: owner, type and reference counts.

    This is Xen's [struct page_info] discipline: a frame has exactly one
    type at a time (writable data or page table of a given level), the
    type is pinned by a use count, and page-table validation promotes a
    frame to a table type only when it can take the type exclusively.

    The type system is what hypercall validation enforces — and what the
    exploits and the injector bypass when they plant raw bytes. The
    divergence between these counts and the actual page-table bytes in
    memory is precisely an {e erroneous state}. *)

type ptype =
  | PGT_none  (** no type yet *)
  | PGT_writable  (** plain data, guest-writable *)
  | PGT_l1
  | PGT_l2
  | PGT_l3
  | PGT_l4
  | PGT_seg  (** descriptor-table page *)

type info = {
  mutable owner : Phys_mem.owner;
  mutable ptype : ptype;
  mutable type_count : int;  (** uses of the current type *)
  mutable ref_count : int;  (** general references (existence) *)
  mutable validated : bool;  (** table contents were validated *)
  mutable pinned : bool;  (** guest pinned the type (vcpu pagetable) *)
}

type t

val create : frames:int -> t
val get : t -> Addr.mfn -> info
val table_level : ptype -> int option
(** [Some 1..4] for page-table types. *)

val ptype_of_level : int -> ptype

val ptype_code : ptype -> int
(** A stable small-integer encoding (the one trace [Page_type] records
    carry). *)

val ptype_to_string : ptype -> string

val get_page : t -> Addr.mfn -> unit
(** Take a general reference. *)

val put_page : t -> Addr.mfn -> unit

val get_page_type : t -> Addr.mfn -> ptype -> (unit, Errno.t) result
(** Take a typed reference: succeeds when the frame already has this
    type, or has no live type (count 0) and can be promoted. A frame
    whose current type is in use by something else is refused — the rule
    that keeps page tables unwritable. *)

val put_page_type : t -> Addr.mfn -> unit

val set_validated : t -> Addr.mfn -> bool -> unit

val counts_consistent : t -> bool
(** Every frame has non-negative counts and [type_count = 0] implies no
    pin — the invariant checked by property tests. *)

(** {1 Type-state generation} *)

val generation : t -> int
(** Monotonic counter over type/ownership mutations. Two equal readings
    (with no {!restore} in between going to a {e different} state) mean
    the type state monitors depend on has not changed — the validity
    test for cached page-table scans. *)

val touch : t -> Addr.mfn -> unit
(** Record an out-of-band mutation of [mfn]'s info. Call sites that
    assign [info] fields directly (allocation, release, promotion) must
    call this so {!generation} stays honest and {!restore} knows to
    replay the frame. *)

(** {1 Checkpointing} *)

type checkpoint

val checkpoint : t -> checkpoint

val restore : t -> checkpoint -> unit
(** Restore by field assignment, so [info] records stay aliased from
    wherever they are held. *)

val of_checkpoint : checkpoint -> t
(** A complete fresh instance holding the checkpointed state — the
    forked-testbed construction path. ({!restore} cannot initialize a
    fresh instance: it only replays the target's own touched set, which
    is empty after {!create}.) The checkpoint is read, never aliased, so
    one checkpoint can seed many forks. *)
