type t = {
  id : int;
  name : string;
  privileged : bool;
  p2m : Addr.mfn option array;
  mutable l4_mfn : Addr.mfn;
  mutable pt_pages : Addr.mfn list;
  start_info_pfn : Addr.pfn;
  vdso_pfn : Addr.pfn;
  grant : Grant_table.t;
  events : Event_channel.t;
  mutable dom_crashed : bool;
}

let make ~id ~name ~privileged ~max_pfn ~start_info_pfn ~vdso_pfn =
  {
    id;
    name;
    privileged;
    p2m = Array.make max_pfn None;
    l4_mfn = -1;
    pt_pages = [];
    start_info_pfn;
    vdso_pfn;
    grant = Grant_table.create ~grefs:64;
    events = Event_channel.create ~max_ports:64;
    dom_crashed = false;
  }

(* Structural copy for hypervisor checkpointing. *)
let deep_copy t =
  {
    t with
    p2m = Array.copy t.p2m;
    grant = Grant_table.deep_copy t.grant;
    events = Event_channel.deep_copy t.events;
  }

let max_pfn t = Array.length t.p2m
let mfn_of_pfn t pfn = if pfn >= 0 && pfn < max_pfn t then t.p2m.(pfn) else None

let pfn_of_mfn t mfn =
  let n = max_pfn t in
  let rec go i =
    if i >= n then None else match t.p2m.(i) with Some m when m = mfn -> Some i | _ -> go (i + 1)
  in
  go 0

let set_p2m t pfn mfn =
  if pfn < 0 || pfn >= max_pfn t then invalid_arg "Domain.set_p2m: pfn out of range";
  t.p2m.(pfn) <- mfn

let populated_pfns t =
  let acc = ref [] in
  for i = max_pfn t - 1 downto 0 do
    if t.p2m.(i) <> None then acc := i :: !acc
  done;
  !acc

let owned t = Phys_mem.Dom t.id

let kernel_vaddr_of_pfn pfn =
  Int64.add Layout.guest_kernel_base (Int64.of_int (pfn * Addr.page_size))

let pfn_of_kernel_vaddr va =
  let va = Addr.canonical va in
  if va >= Layout.guest_kernel_base then
    let delta = Int64.sub va Layout.guest_kernel_base in
    let pfn = Int64.to_int (Int64.shift_right_logical delta Addr.page_shift) in
    Some pfn
  else None

let pp ppf t =
  Format.fprintf ppf "dom%d(%s%s, %d pages)" t.id t.name
    (if t.privileged then ", privileged" else "")
    (List.length (populated_pfns t))
