(** The CPU scheduler: vcpus, a single physical CPU, and the watchdog.

    This substrate carries the largest Table I class — {e Induce a Hang
    State} (20 of the 100 studied CVEs): a guest drives the hypervisor
    into a loop it never leaves (XSA-156's #AC/#DB storm being the
    canonical case), and the pCPU stops making progress for everyone.

    The corresponding erroneous state is a vcpu stuck {e inside the
    hypervisor}; its injector hook is {!hang_vcpu} — the paper's
    "specific component implemented for that end" for states that do
    not live in guest-addressable memory. Whether the hang becomes a
    violation depends on the deployment: with the watchdog enabled the
    host panics (crash); without it the other domains silently starve
    (availability loss). Both are observable by the monitor. *)

type vcpu_state =
  | Runnable
  | Hung_in_hypervisor of string  (** reason; never leaves the pCPU *)

type vcpu = {
  v_dom : int;
  mutable state : vcpu_state;
  mutable runs : int;  (** completed time slices *)
}

type outcome =
  | Scheduled of int  (** this domain's vcpu ran a slice *)
  | Cpu_stalled of string  (** a hung vcpu holds the pCPU *)
  | Idle

type t

val create : ?watchdog_enabled:bool -> ?watchdog_threshold:int -> ?pcpus:int -> unit -> t
(** Defaults: watchdog on, threshold 8 consecutive stalled slices, one
    physical CPU. With [p] pCPUs, each hung vcpu pins one of them: the
    host only stalls outright (and the watchdog only arms) when every
    pCPU is pinned — the SMP deployment choice that turns a total
    freeze into a degradation. *)

val pcpus : t -> int

val watchdog_enabled : t -> bool
val add_vcpu : t -> dom:int -> vcpu
val vcpus : t -> vcpu list
val vcpu_of : t -> dom:int -> vcpu option
val runs_of : t -> dom:int -> int

val tick : t -> outcome
(** One time slice: round-robin over runnable vcpus — unless a hung
    vcpu pins the pCPU, in which case nothing else runs. *)

val stalled_slices : t -> int
(** Consecutive slices lost to a hung vcpu. *)

val watchdog_fired : t -> bool
(** The stall outlasted the threshold (with the watchdog enabled). *)

val remove_vcpu : t -> dom:int -> (unit, Errno.t) result
(** Take the domain's vcpu off the runqueue (pause / teardown). *)

val hang_vcpu : t -> dom:int -> reason:string -> (unit, Errno.t) result
(** The injector hook: mark the domain's vcpu as stuck inside the
    hypervisor ([ENOENT] if the domain has no vcpu). *)

val unhang_vcpu : t -> dom:int -> (unit, Errno.t) result
val hung_vcpus : t -> (int * string) list

(** {1 Checkpointing} *)

type checkpoint

val checkpoint : t -> checkpoint
val restore : t -> checkpoint -> unit
