type mmuext =
  | Pin_l4_table of Addr.mfn
  | Pin_l3_table of Addr.mfn
  | Pin_l2_table of Addr.mfn
  | Pin_l1_table of Addr.mfn
  | Unpin_table of Addr.mfn
  | New_baseptr of Addr.mfn

type grant_op =
  | Gnttab_setup_table of { nr_frames : int }
  | Gnttab_set_version of Grant_table.gt_version
  | Gnttab_grant_access of { gref : int; grantee : int; pfn : Addr.pfn; readonly : bool }
  | Gnttab_end_access of { gref : int }
  | Gnttab_map of { granter : int; gref : int }
  | Gnttab_unmap of { granter : int; handle : int }

type evtchn_op =
  | Evtchn_alloc_unbound of { allowed_remote : int }
  | Evtchn_bind_interdomain of { remote_dom : int; remote_port : int }
  | Evtchn_bind_virq of { virq : int }
  | Evtchn_send of { port : int }
  | Evtchn_close of { port : int }

type call =
  | Mmu_update of (int64 * Pte.t) list
  | Mmuext_op of mmuext
  | Update_va_mapping of { va : Addr.vaddr; value : Pte.t }
  | Memory_exchange of Memory_exchange.request
  | Decrease_reservation of Addr.pfn list
  | Grant_table_op of grant_op
  | Event_channel_op of evtchn_op
  | Console_io of string
  | Raw of { number : int; args : int64 array }

let number_of_call = function
  | Mmu_update _ -> 1
  | Update_va_mapping _ -> 3
  | Memory_exchange _ | Decrease_reservation _ -> 12
  | Console_io _ -> 18
  | Grant_table_op _ -> 20
  | Mmuext_op _ -> 26
  | Event_channel_op _ -> 32
  | Raw { number; _ } -> number

let name_of_call = function
  | Mmu_update _ -> "mmu_update"
  | Update_va_mapping _ -> "update_va_mapping"
  | Memory_exchange _ -> "memory_op(XENMEM_exchange)"
  | Decrease_reservation _ -> "memory_op(XENMEM_decrease_reservation)"
  | Console_io _ -> "console_io"
  | Grant_table_op _ -> "grant_table_op"
  | Mmuext_op _ -> "mmuext_op"
  | Event_channel_op _ -> "event_channel_op"
  | Raw { number; _ } -> Printf.sprintf "hypercall#%d" number

(* --- binary serialization (trace payloads) --------------------------- *)

(* A recorded hypercall carries its full argument structure, so a
   replay driver can re-issue the exact same call against a fresh
   testbed. The encoding is the same little-endian framing the trace
   ring uses: u8 tags, u32 scalars, i64 words, u32-length strings. *)

let put_u8 b v = Buffer.add_uint8 b (v land 0xff)
let put_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let put_i64 b (v : int64) = Buffer.add_int64_le b v

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let encode_mmuext b = function
  | Pin_l4_table mfn -> put_u8 b 0; put_u32 b mfn
  | Pin_l3_table mfn -> put_u8 b 1; put_u32 b mfn
  | Pin_l2_table mfn -> put_u8 b 2; put_u32 b mfn
  | Pin_l1_table mfn -> put_u8 b 3; put_u32 b mfn
  | Unpin_table mfn -> put_u8 b 4; put_u32 b mfn
  | New_baseptr mfn -> put_u8 b 5; put_u32 b mfn

let encode_grant_op b = function
  | Gnttab_setup_table { nr_frames } -> put_u8 b 0; put_u32 b nr_frames
  | Gnttab_set_version v -> put_u8 b 1; put_u8 b (match v with Grant_table.V1 -> 1 | V2 -> 2)
  | Gnttab_grant_access { gref; grantee; pfn; readonly } ->
      put_u8 b 2; put_u32 b gref; put_u32 b grantee; put_u32 b pfn;
      put_u8 b (if readonly then 1 else 0)
  | Gnttab_end_access { gref } -> put_u8 b 3; put_u32 b gref
  | Gnttab_map { granter; gref } -> put_u8 b 4; put_u32 b granter; put_u32 b gref
  | Gnttab_unmap { granter; handle } -> put_u8 b 5; put_u32 b granter; put_u32 b handle

let encode_evtchn_op b = function
  | Evtchn_alloc_unbound { allowed_remote } -> put_u8 b 0; put_u32 b allowed_remote
  | Evtchn_bind_interdomain { remote_dom; remote_port } ->
      put_u8 b 1; put_u32 b remote_dom; put_u32 b remote_port
  | Evtchn_bind_virq { virq } -> put_u8 b 2; put_u32 b virq
  | Evtchn_send { port } -> put_u8 b 3; put_u32 b port
  | Evtchn_close { port } -> put_u8 b 4; put_u32 b port

let encode_call call =
  let b = Buffer.create 64 in
  (match call with
  | Mmu_update updates ->
      put_u8 b 0;
      put_u32 b (List.length updates);
      List.iter
        (fun (ptr, pte) ->
          put_i64 b ptr;
          put_i64 b pte)
        updates
  | Mmuext_op op -> put_u8 b 1; encode_mmuext b op
  | Update_va_mapping { va; value } -> put_u8 b 2; put_i64 b va; put_i64 b value
  | Memory_exchange { Memory_exchange.in_pfns; out_extent_start } ->
      put_u8 b 3;
      put_u32 b (List.length in_pfns);
      List.iter (put_u32 b) in_pfns;
      put_i64 b out_extent_start
  | Decrease_reservation pfns ->
      put_u8 b 4;
      put_u32 b (List.length pfns);
      List.iter (put_u32 b) pfns
  | Grant_table_op op -> put_u8 b 5; encode_grant_op b op
  | Event_channel_op op -> put_u8 b 6; encode_evtchn_op b op
  | Console_io s -> put_u8 b 7; put_str b s
  | Raw { number; args } ->
      put_u8 b 8;
      put_u32 b number;
      put_u32 b (Array.length args);
      Array.iter (put_i64 b) args);
  Buffer.contents b

type reader = { src : string; mutable pos : int }

let fits r n = r.pos + n <= String.length r.src

let get_u8 r =
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  let v = Int32.to_int (String.get_int32_le r.src r.pos) in
  r.pos <- r.pos + 4;
  v

let get_i64 r =
  let v = String.get_int64_le r.src r.pos in
  r.pos <- r.pos + 8;
  v

let decode_mmuext r =
  if not (fits r 5) then None
  else
    let tag = get_u8 r in
    let mfn = get_u32 r in
    match tag with
    | 0 -> Some (Pin_l4_table mfn)
    | 1 -> Some (Pin_l3_table mfn)
    | 2 -> Some (Pin_l2_table mfn)
    | 3 -> Some (Pin_l1_table mfn)
    | 4 -> Some (Unpin_table mfn)
    | 5 -> Some (New_baseptr mfn)
    | _ -> None

let decode_grant_op r =
  if not (fits r 1) then None
  else
    match get_u8 r with
    | 0 when fits r 4 -> Some (Gnttab_setup_table { nr_frames = get_u32 r })
    | 1 when fits r 1 -> (
        match get_u8 r with
        | 1 -> Some (Gnttab_set_version Grant_table.V1)
        | 2 -> Some (Gnttab_set_version Grant_table.V2)
        | _ -> None)
    | 2 when fits r 13 ->
        let gref = get_u32 r in
        let grantee = get_u32 r in
        let pfn = get_u32 r in
        let readonly = get_u8 r = 1 in
        Some (Gnttab_grant_access { gref; grantee; pfn; readonly })
    | 3 when fits r 4 -> Some (Gnttab_end_access { gref = get_u32 r })
    | 4 when fits r 8 ->
        let granter = get_u32 r in
        let gref = get_u32 r in
        Some (Gnttab_map { granter; gref })
    | 5 when fits r 8 ->
        let granter = get_u32 r in
        let handle = get_u32 r in
        Some (Gnttab_unmap { granter; handle })
    | _ -> None

let decode_evtchn_op r =
  if not (fits r 1) then None
  else
    match get_u8 r with
    | 0 when fits r 4 -> Some (Evtchn_alloc_unbound { allowed_remote = get_u32 r })
    | 1 when fits r 8 ->
        let remote_dom = get_u32 r in
        let remote_port = get_u32 r in
        Some (Evtchn_bind_interdomain { remote_dom; remote_port })
    | 2 when fits r 4 -> Some (Evtchn_bind_virq { virq = get_u32 r })
    | 3 when fits r 4 -> Some (Evtchn_send { port = get_u32 r })
    | 4 when fits r 4 -> Some (Evtchn_close { port = get_u32 r })
    | _ -> None

(* [List.init]/[Array.init] do not specify evaluation order, so lists
   read off the cursor are built with explicit left-to-right recursion. *)
let read_list n f r =
  let rec go i acc = if i >= n then List.rev acc else go (i + 1) (f r :: acc) in
  go 0 []

let decode_call src =
  let r = { src; pos = 0 } in
  if not (fits r 1) then None
  else
    match get_u8 r with
    | 0 when fits r 4 ->
        let n = get_u32 r in
        if n < 0 || not (fits r (16 * n)) then None
        else
          Some
            (Mmu_update
               (read_list n
                  (fun r ->
                    let ptr = get_i64 r in
                    let pte = get_i64 r in
                    (ptr, pte))
                  r))
    | 1 -> Option.map (fun op -> Mmuext_op op) (decode_mmuext r)
    | 2 when fits r 16 ->
        let va = get_i64 r in
        let value = get_i64 r in
        Some (Update_va_mapping { va; value })
    | 3 when fits r 4 ->
        let n = get_u32 r in
        if n < 0 || not (fits r ((4 * n) + 8)) then None
        else
          let in_pfns = read_list n get_u32 r in
          let out_extent_start = get_i64 r in
          Some (Memory_exchange { Memory_exchange.in_pfns; out_extent_start })
    | 4 when fits r 4 ->
        let n = get_u32 r in
        if n < 0 || not (fits r (4 * n)) then None
        else Some (Decrease_reservation (read_list n get_u32 r))
    | 5 -> Option.map (fun op -> Grant_table_op op) (decode_grant_op r)
    | 6 -> Option.map (fun op -> Event_channel_op op) (decode_evtchn_op r)
    | 7 when fits r 4 ->
        let n = get_u32 r in
        if n < 0 || not (fits r n) then None
        else begin
          let s = String.sub r.src r.pos n in
          r.pos <- r.pos + n;
          Some (Console_io s)
        end
    | 8 when fits r 8 ->
        let number = get_u32 r in
        let n = get_u32 r in
        if n < 0 || not (fits r (8 * n)) then None
        else Some (Raw { number; args = Array.of_list (read_list n get_i64 r) })
    | _ -> None

let grant_op_index = function
  | Gnttab_setup_table _ -> 0
  | Gnttab_set_version _ -> 1
  | Gnttab_grant_access _ -> 2
  | Gnttab_end_access _ -> 3
  | Gnttab_map _ -> 4
  | Gnttab_unmap _ -> 5

let evtchn_op_index = function
  | Evtchn_alloc_unbound _ -> 0
  | Evtchn_bind_interdomain _ -> 1
  | Evtchn_bind_virq _ -> 2
  | Evtchn_send _ -> 3
  | Evtchn_close _ -> 4

let ok0 = Ok 0L
let of_unit = function Ok () -> ok0 | Error e -> Error e
let of_int = function Ok n -> Ok (Int64.of_int n) | Error e -> Error e

let do_mmuext hv dom = function
  | Pin_l4_table mfn -> of_unit (Mm.pin_table hv dom ~level:4 mfn)
  | Pin_l3_table mfn -> of_unit (Mm.pin_table hv dom ~level:3 mfn)
  | Pin_l2_table mfn -> of_unit (Mm.pin_table hv dom ~level:2 mfn)
  | Pin_l1_table mfn -> of_unit (Mm.pin_table hv dom ~level:1 mfn)
  | Unpin_table mfn -> of_unit (Mm.unpin_table hv dom mfn)
  | New_baseptr mfn -> of_unit (Mm.set_baseptr hv dom mfn)

let do_grant_op hv dom = function
  | Gnttab_setup_table { nr_frames } ->
      if nr_frames <= 0 || nr_frames > 4 then Error Errno.EINVAL
      else if Grant_table.memory_backed dom.Domain.grant then Error Errno.EBUSY
      else begin
        let frames = List.init nr_frames (fun _ -> Hv.alloc_xen_page hv) in
        Grant_table.set_shared dom.Domain.grant frames;
        (* the guest maps these frames itself (validate_l1 admits a
           domain's own grant frames); return the first mfn like the
           real op returns the frame list *)
        Ok (Int64.of_int (List.hd frames))
      end
  | Gnttab_set_version v ->
      let alloc () = Hv.alloc_xen_page hv in
      let release mfn = match Hv.release_page hv mfn with Ok () | Error _ -> () in
      of_unit (Grant_table.set_version dom.Domain.grant ~alloc ~release v)
  | Gnttab_grant_access { gref; grantee; pfn; readonly } -> (
      match Domain.mfn_of_pfn dom pfn with
      | None -> Error Errno.EINVAL
      | Some mfn -> of_unit (Grant_table.grant_access dom.Domain.grant ~gref ~grantee ~mfn ~readonly))
  | Gnttab_end_access { gref } -> of_unit (Grant_table.end_access dom.Domain.grant ~gref)
  | Gnttab_map { granter; gref } -> (
      Trace.charge hv.Hv.trace Vclock.Grant_map;
      match Hv.find_domain hv granter with
      | None -> Error Errno.EINVAL
      | Some gd ->
          let result =
            if Grant_table.memory_backed gd.Domain.grant then
              Grant_table.map_memory gd.Domain.grant ~mem:hv.Hv.mem ~granter
                ~mapper:dom.Domain.id ~gref
                ~gfn_to_mfn:(fun gfn -> Domain.mfn_of_pfn gd gfn)
            else Grant_table.map gd.Domain.grant ~granter ~mapper:dom.Domain.id ~gref
          in
          (match result with
          | Ok record -> Ok (Int64.of_int record.Grant_table.handle)
          | Error e -> Error e))
  | Gnttab_unmap { granter; handle } -> (
      Trace.charge hv.Hv.trace Vclock.Grant_map;
      match Hv.find_domain hv granter with
      | None -> Error Errno.EINVAL
      | Some gd ->
          if Grant_table.memory_backed gd.Domain.grant then
            of_unit (Grant_table.unmap_memory gd.Domain.grant ~mem:hv.Hv.mem ~handle)
          else of_unit (Grant_table.unmap gd.Domain.grant ~handle))

let do_evtchn hv dom = function
  | Evtchn_alloc_unbound { allowed_remote } -> (
      match Event_channel.alloc_unbound dom.Domain.events ~allowed_remote with
      | Ok port -> Ok (Int64.of_int port)
      | Error e -> Error e)
  | Evtchn_bind_interdomain { remote_dom; remote_port } -> (
      match Hv.find_domain hv remote_dom with
      | None -> Error Errno.EINVAL
      | Some rd -> (
          match
            Event_channel.bind_interdomain ~local:dom.Domain.events ~local_dom:dom.Domain.id
              ~remote:rd.Domain.events ~remote_dom ~remote_port
          with
          | Ok port -> Ok (Int64.of_int port)
          | Error e -> Error e))
  | Evtchn_bind_virq { virq } -> (
      match Event_channel.bind_virq dom.Domain.events ~virq with
      | Ok port -> Ok (Int64.of_int port)
      | Error e -> Error e)
  | Evtchn_send { port } -> (
      Trace.charge hv.Hv.trace Vclock.Evtchn_send;
      (* interdomain semantics: signalling my port raises the peer's *)
      match Event_channel.port dom.Domain.events port with
      | Some { Event_channel.binding = Some (Event_channel.Interdomain { remote_dom; remote_port }); _ }
        -> (
          match Hv.find_domain hv remote_dom with
          | Some rd -> of_unit (Event_channel.send rd.Domain.events remote_port)
          | None -> Error Errno.EINVAL)
      | Some { Event_channel.binding = Some (Event_channel.Virq _); _ } ->
          of_unit (Event_channel.send dom.Domain.events port)
      | Some _ -> Error Errno.ENOENT
      | None -> Error Errno.EINVAL)
  | Evtchn_close { port } -> of_unit (Event_channel.close dom.Domain.events port)

let dispatch_uncounted hv dom call =
  if Hv.is_crashed hv then Error Errno.EINVAL
  else
    match call with
    | Mmu_update updates -> of_int (Mm.mmu_update hv dom ~updates)
    | Mmuext_op op -> do_mmuext hv dom op
    | Update_va_mapping { va; value } -> of_unit (Mm.update_va_mapping hv dom ~va value)
    | Memory_exchange req -> (
        match Memory_exchange.exchange hv dom req with
        | Ok { Memory_exchange.nr_exchanged; _ } -> Ok (Int64.of_int nr_exchanged)
        | Error e -> Error e)
    | Decrease_reservation pfns -> of_int (Mm.decrease_reservation hv dom pfns)
    | Grant_table_op op ->
        let tr = hv.Hv.trace in
        Trace.note_grant tr;
        if Trace.recording tr then
          Trace.emit tr (Trace.Grant_op { domid = dom.Domain.id; op = grant_op_index op });
        do_grant_op hv dom op
    | Event_channel_op op ->
        let tr = hv.Hv.trace in
        Trace.note_evtchn tr;
        if Trace.recording tr then
          Trace.emit tr (Trace.Evtchn_op { domid = dom.Domain.id; op = evtchn_op_index op });
        do_evtchn hv dom op
    | Console_io s ->
        Hv.log hv (Printf.sprintf "(d%d) %s" dom.Domain.id s);
        ok0
    | Raw { number; args } -> (
        match Hv.lookup_hypercall hv number with
        | Some (_, handler) -> handler hv dom args
        | None -> Error Errno.ENOSYS)

let dispatch hv dom call =
  let tr = hv.Hv.trace in
  let number = number_of_call call in
  (* Only a top-level call is a replayable input: nested calls (the
     balloon driver inside a recorded kernel tick) are consequences the
     replay regenerates, so their entry records carry no payload. *)
  if Trace.recording tr && Trace.top_level tr then begin
    let payload = encode_call call in
    Trace.emit tr
      (Trace.Hypercall
         { domid = dom.Domain.id; number; digest = Trace.digest payload; payload })
  end;
  (* the dispatch itself (entry, demux, exit) costs a fixed slice of
     virtual time; the work the call performs accrues inside *)
  Trace.charge tr Vclock.Hypercall_dispatch;
  Trace.enter tr;
  (* everything the hypervisor writes on behalf of this call carries the
     call number as origin; more specific origins (the injector port)
     nest inside and win *)
  let result =
    Phys_mem.with_origin hv.Hv.mem (Provenance.Hypercall_arg number) (fun () ->
        dispatch_uncounted hv dom call)
  in
  Trace.leave tr;
  Hv.count_hypercall hv ~number ~failed:(Result.is_error result);
  (match Trace.coverage tr with
  | Some cov ->
      Coverage.note_port cov ~nr:number
        ~outcome:(match result with Ok _ -> 0 | Error e -> Errno.to_int e)
  | None -> ());
  if Trace.recording tr then begin
    let rc = match result with Ok v -> v | Error e -> Int64.of_int (Errno.to_return_code e) in
    Trace.emit tr
      (Trace.Hypercall_ret
         { domid = dom.Domain.id; number; rc; failed = Result.is_error result })
  end;
  result

let dispatch_unit hv dom call =
  match dispatch hv dom call with Ok _ -> Ok () | Error e -> Error e

let return_code = function
  | Ok v -> Int64.to_int v
  | Error e -> Errno.to_return_code e
