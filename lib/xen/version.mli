(** The three Xen versions of the paper's evaluation and the
    vulnerability/hardening differences between them.

    Each predicate corresponds to one concrete code-path difference; the
    rest of the hypervisor is identical across versions, mirroring the
    paper's controlled experimental environment ("the only difference was
    the Xen version"). *)

type t = V4_6 | V4_8 | V4_13

val all : t list
val to_string : t -> string
(** "4.6", "4.8", "4.13" *)

val banner : t -> string
(** The version banner printed in crash dumps, e.g.
    ["Xen-4.6.0 x86_64 debug=y Not tainted"]. *)

val of_string : string -> t option

val xsa148_fixed : t -> bool
(** L2 validation checks the PSE bit (fixed in 4.7+). *)

val xsa182_fixed : t -> bool
(** The L4 update fast path no longer treats RW as a safe flag
    (fixed in 4.7+). *)

val xsa212_fixed : t -> bool
(** [memory_exchange] bounds-checks the output array address
    (fixed in 4.9+; backported to the 4.8 line used in the paper). *)

val hardened_address_space : t -> bool
(** Post-XSA-213 hardening (4.9+): the 512 GiB RWX linear-page-table
    window and the extra guest-mappable L4 slots were removed. *)

val grant_frame_ownership_checked : t -> bool
(** [validate_l1] checks that a Xen-owned grant-table frame belongs to
    the mapping domain before admitting a writable mapping. 4.6 admits
    any domain's grant frames — a guest can rewrite a co-resident
    domain's wire entries and forge grants that were never made. *)

val venom_fixed : t -> bool
(** The device-model FDC bounds-checks FIFO input (CVE-2015-3456
    "VENOM", fixed in the QEMU shipped from 4.7 on). *)

val dm_handler_validation : t -> bool
(** The device model validates its dispatch handler against a known-good
    value before each command kick (a 4.13-era hardening), shielding
    guests from a corrupted handler even when corruption lands. *)

val pp : Format.formatter -> t -> unit
