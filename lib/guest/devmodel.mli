(** The testbed-resident device model: one {!Fdc} instance serving one
    guest domain, wired into the trace, vclock and provenance stacks.

    Two surfaces reach the FDC:

    - {!guest_io} — the guest-facing command path ([fd_write_data]
      through the FIFO). On a VENOM-vulnerable build an over-long write
      overflows into the handler pointer: the {e exploit} path.
    - {!inject} — the injection surface: write the erroneous state
      (bytes beyond the FIFO end) directly, counted and recorded like
      any other injector access. Reachability is gated by the
      substrate ([Substrate.S.inject_dm_write] refuses unless the
      injection port is installed).

    A corrupted handler {e radiates} on the next {!kick} (run every
    scheduler round): the device model writes a backdoor into the
    served guest's vDSO page under a {!Provenance.Device_model} origin
    carrying the corrupting injector ordinal (or 0 for the exploit
    path) — so a privilege escalation observed in the {e bystander}
    domain still attributes back to the injector. *)

type t

val create : Hv.t -> served:int -> t
(** A device model for the domain [served], configured from the host's
    {!Version} ({!Version.venom_fixed}, {!Version.dm_handler_validation}). *)

val fdc : t -> Fdc.t
val served : t -> int

val corrupted : t -> bool
(** The handler pointer no longer holds its legitimate value. *)

val radiated : t -> bool

val reset : t -> unit
(** Back to pristine device-model state (testbed reset path). *)

val op_guest_io : int
(** [Trace.Backend_op] op code for {!guest_io} boundary records (100). *)

val op_inject : int
(** [Trace.Backend_op] op code for {!inject} boundary records (101). *)

val guest_io : t -> domid:int -> bytes -> (unit, Errno.t) result
(** Issue [fd_write_data data] from guest [domid]. Emits a boundary
    record, charges {!Vclock.Dm_io}, and fails with [EINVAL] when a
    fixed build rejects the over-long input. *)

val inject : t -> bytes -> (unit, Errno.t) result
(** Write [data] directly past the FIFO end (the handler pointer sits
    at offset 0). Emits a boundary record and an [Injector_access]
    record, bumps the injector counter, charges {!Vclock.Dm_io}. *)

val kick : t -> unit
(** One device-model turn (run from [Testbed.tick_all]): dispatch
    through the handler; a hijacked handler radiates the backdoor into
    the served guest's vDSO exactly once per corruption. *)
