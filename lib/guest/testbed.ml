type t = {
  hv : Hv.t;
  mutable net : Netsim.t;
  mutable dom0 : Kernel.t;
  mutable attacker : Kernel.t;
  mutable victim : Kernel.t;
  mutable extras : Kernel.t list;
  dm : Devmodel.t;
  mutable load : Load_mix.t;
  mutable load_streams : (int * Load_mix.stream) list;
  remote_host : string;
  checkpoint : Hv.checkpoint;
}

let guest_kernels t = t.victim :: t.attacker :: t.extras

(* Background-load streams are pure functions of the domain id, re-seeded
   whenever the machine returns to its boot state (create, fork, reset) —
   the determinism contract that keeps loaded testbeds replayable. *)
let reseed_load t =
  t.load_streams <-
    List.map
      (fun k ->
        (Kernel.domid k, Load_mix.stream ~seed:(Load_mix.seed_for_domain (Kernel.domid k))))
      (guest_kernels t)

(* Extra guest domains beyond the paper's attacker/victim pair follow
   the same naming scheme: guest05, guest07, ... *)
let extra_name i = Printf.sprintf "guest%02d" (5 + (2 * i))

let create ?(frames = 2048) ?(dom0_pages = 128) ?(guest_pages = 96) ?(domains = 2)
    ?(load = Load_mix.none) version =
  if domains < 2 then invalid_arg "Testbed.create: need at least victim + attacker";
  let hv = Hv.boot ~version ~frames in
  let net = Netsim.create () in
  Netsim.set_tracer net hv.Hv.trace;
  let dom0 = Builder.create_domain hv ~name:"xen3" ~privileged:true ~pages:dom0_pages in
  let victim = Builder.create_domain hv ~name:"guest01" ~privileged:false ~pages:guest_pages in
  let attacker = Builder.create_domain hv ~name:"guest03" ~privileged:false ~pages:guest_pages in
  let extras =
    List.init (domains - 2) (fun i ->
        Builder.create_domain hv ~name:(extra_name i) ~privileged:false ~pages:guest_pages)
  in
  let t =
    {
      hv;
      net;
      dom0 = Kernel.create hv dom0 net;
      victim = Kernel.create hv victim net;
      attacker = Kernel.create hv attacker net;
      extras = List.map (fun d -> Kernel.create hv d net) extras;
      dm = Devmodel.create hv ~served:victim.Domain.id;
      load;
      load_streams = [];
      remote_host = "xen2";
      checkpoint = Hv.checkpoint hv;
    }
  in
  reseed_load t;
  t

(* Fork a new testbed from [template] without re-running the builder:
   the hypervisor is an {!Hv.fork} (memory shared copy-on-write), and the
   kernels are rebuilt around the forked domains exactly as [reset] does.
   The fork shares the template's checkpoint record — restores only read
   it — so [reset] on a forked testbed works unchanged. *)
let fork ?load template =
  let hv = Hv.fork template.hv template.checkpoint in
  let net = Netsim.create () in
  Netsim.set_tracer net hv.Hv.trace;
  let rebuild stale =
    match Hv.find_domain hv (Kernel.domid stale) with
    | Some dom -> Kernel.create hv dom net
    | None -> invalid_arg "Testbed.fork: template lost a domain"
  in
  let t =
    {
      hv;
      net;
      dom0 = rebuild template.dom0;
      victim = rebuild template.victim;
      attacker = rebuild template.attacker;
      extras = List.map rebuild template.extras;
      (* the device model is process state outside the checkpoint: a
         fork of a pristine template starts with a pristine one *)
      dm = Devmodel.create hv ~served:(Kernel.domid template.victim);
      load = (match load with Some l -> l | None -> template.load);
      load_streams = [];
      remote_host = template.remote_host;
      checkpoint = template.checkpoint;
    }
  in
  reseed_load t;
  t

(* The warm pool: one frozen template per configuration, built on first
   use and shared by every subsequent [create_pooled] — including forks
   requested concurrently from worker domains, hence the mutex. The load
   mix is runtime-only state (it never touches boot), so templates are
   pooled load-free and each fork installs its own mix. *)
let pool_lock = Mutex.create ()
let pool : (Version.t * int * int * int * int, t) Hashtbl.t = Hashtbl.create 8

let template ~frames ~dom0_pages ~guest_pages ~domains version =
  let key = (version, frames, dom0_pages, guest_pages, domains) in
  Mutex.lock pool_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock pool_lock) @@ fun () ->
  match Hashtbl.find_opt pool key with
  | Some tmpl -> tmpl
  | None ->
      let tmpl = create ~frames ~dom0_pages ~guest_pages ~domains version in
      Phys_mem.freeze tmpl.hv.Hv.mem;
      Hashtbl.replace pool key tmpl;
      tmpl

let create_pooled ?(frames = 2048) ?(dom0_pages = 128) ?(guest_pages = 96) ?(domains = 2)
    ?(load = Load_mix.none) version =
  fork ~load (template ~frames ~dom0_pages ~guest_pages ~domains version)

let reset t =
  Hv.restore t.hv t.checkpoint;
  (* the restore replaced the Domain.t records inside the hypervisor, so
     the kernels (which hold the old records) must be rebuilt around the
     restored ones — by domid, exactly as after [create] *)
  let net = Netsim.create () in
  Netsim.set_tracer net t.hv.Hv.trace;
  let rebuild stale =
    match Hv.find_domain t.hv (Kernel.domid stale) with
    | Some dom -> Kernel.create t.hv dom net
    | None -> invalid_arg "Testbed.reset: checkpoint lost a domain"
  in
  t.net <- net;
  t.dom0 <- rebuild t.dom0;
  t.victim <- rebuild t.victim;
  t.attacker <- rebuild t.attacker;
  t.extras <- List.map rebuild t.extras;
  Devmodel.reset t.dm;
  reseed_load t

let kernels t = t.dom0 :: t.victim :: t.attacker :: t.extras
let domains t = List.length (guest_kernels t)
let domain_names t = List.map Kernel.hostname (guest_kernels t)

let kernel_of t domid =
  List.find_opt (fun k -> Kernel.domid k = domid) (kernels t)

(* One background-load operation, drawn from the domain's stream: a mix
   of guest memory traffic, event-channel round trips and grant-table
   round trips, all through the ordinary instrumented (and vclock-
   charged) paths. Grant refs 48-63 are reserved for load so scenarios
   using low refs never collide. *)
let load_op k rnd =
  match Int64.to_int (Int64.logand rnd 3L) with
  | 0 | 1 -> ignore (Kernel.read_u64 k (Kernel.start_info_vaddr k))
  | 2 -> (
      match
        Kernel.hypercall k (Hypercall.Event_channel_op (Hypercall.Evtchn_bind_virq { virq = 0 }))
      with
      | Ok port ->
          let port = Int64.to_int port in
          ignore
            (Kernel.hypercall k (Hypercall.Event_channel_op (Hypercall.Evtchn_send { port })));
          ignore (Event_channel.consume (Kernel.dom k).Domain.events port);
          ignore
            (Kernel.hypercall k (Hypercall.Event_channel_op (Hypercall.Evtchn_close { port })))
      | Error _ -> ())
  | _ -> (
      let gref = 48 + Int64.to_int (Int64.logand (Int64.shift_right_logical rnd 2) 15L) in
      match
        Kernel.hypercall k
          (Hypercall.Grant_table_op
             (Hypercall.Gnttab_grant_access { gref; grantee = 0; pfn = 3; readonly = true }))
      with
      | Ok _ ->
          ignore
            (Kernel.hypercall k (Hypercall.Grant_table_op (Hypercall.Gnttab_end_access { gref })))
      | Error _ -> ())

let run_load t =
  let n = Load_mix.ops_per_tick t.load in
  if n > 0 then
    List.iter
      (fun k ->
        match List.assoc_opt (Kernel.domid k) t.load_streams with
        | Some st ->
            for _ = 1 to n do
              load_op k (Load_mix.next st)
            done
        | None -> ())
      (guest_kernels t)

(* One scheduling round: every vcpu gets (at most) one slice; a hung
   vcpu pins the pCPU and nobody else runs. Background load and the
   device-model turn run inside the round, so a replayed [Sched_round]
   regenerates them deterministically. *)
let tick_all t =
  let tr = t.hv.Hv.trace in
  if Trace.recording tr && Trace.top_level tr then Trace.emit tr Trace.Sched_round;
  Trace.enter tr;
  Fun.protect ~finally:(fun () -> Trace.leave tr) @@ fun () ->
  for _ = 1 to List.length (kernels t) do
    match Hv.sched_tick t.hv with
    | Sched.Scheduled domid -> (
        match kernel_of t domid with Some k -> Kernel.tick k | None -> ())
    | Sched.Cpu_stalled _ | Sched.Idle -> ()
  done;
  run_load t;
  Devmodel.kick t.dm

let remote_listen t ~port =
  (* the boundary emit happens inside Netsim.listen, where replay also
     goes through *)
  Netsim.listen t.net ~host:t.remote_host ~port
