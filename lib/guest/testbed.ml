type t = {
  hv : Hv.t;
  mutable net : Netsim.t;
  mutable dom0 : Kernel.t;
  mutable attacker : Kernel.t;
  mutable victim : Kernel.t;
  remote_host : string;
  checkpoint : Hv.checkpoint;
}

let create ?(frames = 2048) ?(dom0_pages = 128) ?(guest_pages = 96) version =
  let hv = Hv.boot ~version ~frames in
  let net = Netsim.create () in
  Netsim.set_tracer net hv.Hv.trace;
  let dom0 = Builder.create_domain hv ~name:"xen3" ~privileged:true ~pages:dom0_pages in
  let victim = Builder.create_domain hv ~name:"guest01" ~privileged:false ~pages:guest_pages in
  let attacker = Builder.create_domain hv ~name:"guest03" ~privileged:false ~pages:guest_pages in
  {
    hv;
    net;
    dom0 = Kernel.create hv dom0 net;
    victim = Kernel.create hv victim net;
    attacker = Kernel.create hv attacker net;
    remote_host = "xen2";
    checkpoint = Hv.checkpoint hv;
  }

(* Fork a new testbed from [template] without re-running the builder:
   the hypervisor is an {!Hv.fork} (memory shared copy-on-write), and the
   kernels are rebuilt around the forked domains exactly as [reset] does.
   The fork shares the template's checkpoint record — restores only read
   it — so [reset] on a forked testbed works unchanged. *)
let fork template =
  let hv = Hv.fork template.hv template.checkpoint in
  let net = Netsim.create () in
  Netsim.set_tracer net hv.Hv.trace;
  let rebuild stale =
    match Hv.find_domain hv (Kernel.domid stale) with
    | Some dom -> Kernel.create hv dom net
    | None -> invalid_arg "Testbed.fork: template lost a domain"
  in
  {
    hv;
    net;
    dom0 = rebuild template.dom0;
    victim = rebuild template.victim;
    attacker = rebuild template.attacker;
    remote_host = template.remote_host;
    checkpoint = template.checkpoint;
  }

(* The warm pool: one frozen template per configuration, built on first
   use and shared by every subsequent [create_pooled] — including forks
   requested concurrently from worker domains, hence the mutex. *)
let pool_lock = Mutex.create ()
let pool : (Version.t * int * int * int, t) Hashtbl.t = Hashtbl.create 8

let template ~frames ~dom0_pages ~guest_pages version =
  let key = (version, frames, dom0_pages, guest_pages) in
  Mutex.lock pool_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock pool_lock) @@ fun () ->
  match Hashtbl.find_opt pool key with
  | Some tmpl -> tmpl
  | None ->
      let tmpl = create ~frames ~dom0_pages ~guest_pages version in
      Phys_mem.freeze tmpl.hv.Hv.mem;
      Hashtbl.replace pool key tmpl;
      tmpl

let create_pooled ?(frames = 2048) ?(dom0_pages = 128) ?(guest_pages = 96) version =
  fork (template ~frames ~dom0_pages ~guest_pages version)

let reset t =
  Hv.restore t.hv t.checkpoint;
  (* the restore replaced the Domain.t records inside the hypervisor, so
     the kernels (which hold the old records) must be rebuilt around the
     restored ones — by domid, exactly as after [create] *)
  let net = Netsim.create () in
  Netsim.set_tracer net t.hv.Hv.trace;
  let rebuild stale =
    match Hv.find_domain t.hv (Kernel.domid stale) with
    | Some dom -> Kernel.create t.hv dom net
    | None -> invalid_arg "Testbed.reset: checkpoint lost a domain"
  in
  t.net <- net;
  t.dom0 <- rebuild t.dom0;
  t.victim <- rebuild t.victim;
  t.attacker <- rebuild t.attacker

let kernels t = [ t.dom0; t.victim; t.attacker ]

let kernel_of t domid =
  List.find_opt (fun k -> Kernel.domid k = domid) (kernels t)

(* One scheduling round: every vcpu gets (at most) one slice; a hung
   vcpu pins the pCPU and nobody else runs. *)
let tick_all t =
  let tr = t.hv.Hv.trace in
  if Trace.recording tr && Trace.top_level tr then Trace.emit tr Trace.Sched_round;
  Trace.enter tr;
  Fun.protect ~finally:(fun () -> Trace.leave tr) @@ fun () ->
  for _ = 1 to List.length (kernels t) do
    match Hv.sched_tick t.hv with
    | Sched.Scheduled domid -> (
        match kernel_of t domid with Some k -> Kernel.tick k | None -> ())
    | Sched.Cpu_stalled _ | Sched.Idle -> ()
  done

let remote_listen t ~port =
  (* the boundary emit happens inside Netsim.listen, where replay also
     goes through *)
  Netsim.listen t.net ~host:t.remote_host ~port
