(** The paper's experimental environment: one host running a given Xen
    version, a privileged dom0 ("xen3"), an attacker-controlled guest
    ("guest03"), a victim guest ("guest01"), optional extra bystander
    guests ("guest05", "guest07", ...), a device model serving the
    victim, and a remote attacker host ("xen2") on the simulated
    network.

    Everything but the Xen version is identical across instantiations,
    matching §IX-C ("the only difference was the Xen version").

    [create] takes an {!Hv.checkpoint} of the freshly-booted state, so a
    campaign can {!reset} one testbed between trials in O(dirty pages)
    instead of paying a full boot per trial.

    {2 Multi-domain testbeds}

    [?domains] is the number of concurrent guest domains (victim +
    attacker + extras; default 2, the historical pair). [?load] attaches
    a deterministic background workload ({!Load_mix}): every guest
    domain performs the mix's ops per scheduler round, drawn from a
    per-domain splitmix64 stream that is re-seeded on create/fork/reset
    — so loaded, multi-domain testbeds stay byte-replayable and
    pooled ≡ fresh. *)

type t = {
  hv : Hv.t;
  mutable net : Netsim.t;
  mutable dom0 : Kernel.t;
  mutable attacker : Kernel.t;
  mutable victim : Kernel.t;
  mutable extras : Kernel.t list;  (** bystander guests beyond the pair *)
  dm : Devmodel.t;  (** the device model serving the victim *)
  mutable load : Load_mix.t;
  mutable load_streams : (int * Load_mix.stream) list;
  remote_host : string;
  checkpoint : Hv.checkpoint;
}

val create :
  ?frames:int -> ?dom0_pages:int -> ?guest_pages:int -> ?domains:int -> ?load:Load_mix.t ->
  Version.t -> t
(** Defaults: 2048 frames, 128 dom0 pages, 96 pages per guest, 2 guest
    domains, no background load. *)

val fork : ?load:Load_mix.t -> t -> t
(** A new testbed forked from [t] in O(metadata): the hypervisor memory
    is shared copy-on-write with the template ({!Hv.fork}), kernels are
    rebuilt around the forked domains, the device model starts pristine.
    Requires the template's memory to be {!Phys_mem.freeze}d. [?load]
    overrides the template's mix (load is runtime-only state).
    Observably equivalent to [create] with the template's parameters. *)

val create_pooled :
  ?frames:int -> ?dom0_pages:int -> ?guest_pages:int -> ?domains:int -> ?load:Load_mix.t ->
  Version.t -> t
(** Like {!create}, but forked from a process-wide frozen template for
    the given configuration (built once, on first use). Amortizes the
    builder cost across every shard and matrix cell of a campaign;
    thread-safe, so worker domains may call it concurrently. The result
    is observably equivalent to a fresh {!create} — the property the
    pooled-identity tests pin down. *)

val reset : t -> unit
(** Roll the testbed back to the state captured at [create]: hypervisor
    restored from the checkpoint (only dirty frames rewritten), fresh
    network, fresh guest kernels around the restored domains, pristine
    device model, re-seeded load streams. After [reset t], the testbed
    is observably equivalent to [create version] — the property the
    equivalence tests pin down. *)

val kernels : t -> Kernel.t list
(** All guest kernels, dom0 first, extras last. *)

val guest_kernels : t -> Kernel.t list
(** The unprivileged guests (victim, attacker, extras) — the domains
    the per-domain result rows index. *)

val domains : t -> int
(** Number of guest domains (excluding dom0). *)

val domain_names : t -> string list
(** Hostnames of the guest domains, {!guest_kernels} order. *)

val tick_all : t -> unit
(** One scheduler round on every domain (vDSO hooks run), then the
    background-load ops for each guest domain, then one device-model
    turn. All inside the round's trace scope, so a replayed
    [Sched_round] regenerates the whole thing. *)

val remote_listen : t -> port:int -> unit
(** Start a listener on the remote attacker host. *)
