(** The paper's experimental environment: one host running a given Xen
    version, a privileged dom0 ("xen3"), an attacker-controlled guest
    ("guest03"), a victim guest ("guest01") and a remote attacker host
    ("xen2") on the simulated network.

    Everything but the Xen version is identical across instantiations,
    matching §IX-C ("the only difference was the Xen version").

    [create] takes an {!Hv.checkpoint} of the freshly-booted state, so a
    campaign can {!reset} one testbed between trials in O(dirty pages)
    instead of paying a full boot per trial. *)

type t = {
  hv : Hv.t;
  mutable net : Netsim.t;
  mutable dom0 : Kernel.t;
  mutable attacker : Kernel.t;
  mutable victim : Kernel.t;
  remote_host : string;
  checkpoint : Hv.checkpoint;
}

val create : ?frames:int -> ?dom0_pages:int -> ?guest_pages:int -> Version.t -> t
(** Defaults: 2048 frames, 128 dom0 pages, 96 pages per guest. *)

val fork : t -> t
(** A new testbed forked from [t] in O(metadata): the hypervisor memory
    is shared copy-on-write with the template ({!Hv.fork}), kernels are
    rebuilt around the forked domains. Requires the template's memory to
    be {!Phys_mem.freeze}d. Observably equivalent to [create] with the
    template's parameters. *)

val create_pooled : ?frames:int -> ?dom0_pages:int -> ?guest_pages:int -> Version.t -> t
(** Like {!create}, but forked from a process-wide frozen template for
    the given configuration (built once, on first use). Amortizes the
    builder cost across every shard and matrix cell of a campaign;
    thread-safe, so worker domains may call it concurrently. The result
    is observably equivalent to a fresh {!create} — the property the
    pooled-identity tests pin down. *)

val reset : t -> unit
(** Roll the testbed back to the state captured at [create]: hypervisor
    restored from the checkpoint (only dirty frames rewritten), fresh
    network, fresh guest kernels around the restored domains. After
    [reset t], the testbed is observably equivalent to
    [create version] — the property the equivalence tests pin down. *)

val kernels : t -> Kernel.t list
(** All guest kernels, dom0 first. *)

val tick_all : t -> unit
(** One scheduler round on every domain (vDSO hooks run). *)

val remote_listen : t -> port:int -> unit
(** Start a listener on the remote attacker host. *)
