type t = {
  hv : Hv.t;
  domain : Domain.t;
  guest_fs : Fs.t;
  net : Netsim.t;
  mutable klog_rev : string list;
  mutable jiffies : int;
  irq_handlers : (int, unit -> unit) Hashtbl.t;
  mutable irqs_handled : int;
  procs : Process.t;
}

let create hv domain net =
  let guest_fs = Fs.create () in
  if domain.Domain.privileged then
    Fs.write guest_fs ~path:"/root/root_msg" ~uid:0 "Confidential content in root folder!";
  {
    hv;
    domain;
    guest_fs;
    net;
    klog_rev = [];
    jiffies = 0;
    irq_handlers = Hashtbl.create 7;
    irqs_handled = 0;
    procs = Process.create ();
  }

let hv t = t.hv
let dom t = t.domain
let fs t = t.guest_fs
let hostname t = t.domain.Domain.name
let domid t = t.domain.Domain.id
let ip t = Printf.sprintf "10.3.1.%d" (180 + domid t)

(* --- kernel log ------------------------------------------------------ *)

let stamp t =
  t.jiffies <- t.jiffies + 17;
  Printf.sprintf "[  %3d.%04d]" (116 + (t.jiffies / 1000)) (t.jiffies mod 10000)

let printk t msg = t.klog_rev <- Printf.sprintf "%s %s" (stamp t) msg :: t.klog_rev

let printk_tagged t ~tag msg =
  t.klog_rev <- Printf.sprintf "%s %s:\t%s" (stamp t) tag msg :: t.klog_rev

let klog t = List.rev t.klog_rev

(* --- hypercalls ------------------------------------------------------ *)

let hypercall t call = Hypercall.dispatch t.hv t.domain call
let hypercall_rc t call = Hypercall.return_code (hypercall t call)

let raw_hypercall t ~number ?rdi ?rsi ?rdx ?r10 () =
  Abi.dispatch t.hv t.domain ~number ?rdi ?rsi ?rdx ?r10 ()
let sidt t = Cpu.sidt t.hv.Hv.cpu

let start_info_vaddr t = Domain.kernel_vaddr_of_pfn t.domain.Domain.start_info_pfn

let start_info_field t off =
  let mfn =
    match Domain.mfn_of_pfn t.domain t.domain.Domain.start_info_pfn with
    | Some mfn -> mfn
    | None -> failwith "Kernel: start_info page missing"
  in
  Frame.get_u64 (Phys_mem.frame_ro t.hv.Hv.mem mfn) off

let pt_base_mfn t = Int64.to_int (start_info_field t Builder.Start_info.pt_base_off)

let vdso_mfn t =
  match Domain.mfn_of_pfn t.domain t.domain.Domain.vdso_pfn with
  | Some mfn -> mfn
  | None -> failwith "Kernel: vdso page missing"

(* A top-level crossing from a script into the guest: record it as a
   boundary event. Everything the machine does underneath (faults,
   flushes, nested hypercalls) is a consequence replay regenerates. *)
let trace_boundary t event =
  let tr = t.hv.Hv.trace in
  if Trace.recording tr && Trace.top_level tr then Trace.emit tr (event ())

let pt_entry t ~table_mfn ~index =
  match Domain.pfn_of_mfn t.domain table_mfn with
  | None -> None
  | Some pfn -> (
      let va =
        Int64.add (Domain.kernel_vaddr_of_pfn pfn) (Int64.of_int (8 * index))
      in
      (* probe reads hit the TLB like any kernel read, so they are part
         of the replayable input stream (op [Op_probe_u64]) even though
         they never deliver a fault *)
      trace_boundary t (fun () ->
          Trace.Guest_mem
            { domid = t.domain.Domain.id; op = Trace.Op_probe_u64; va; len = 8; data = "" });
      match
        Cpu.read_u64 t.hv.Hv.cpu ~ring:Cpu.Kernel ~cr3:t.domain.Domain.l4_mfn va
      with
      | Ok v -> Some v
      | Error _ -> None)

(* --- faulting memory access ------------------------------------------ *)

(* A guest fault is first delivered through Xen's IDT: if the page-fault
   gate was corrupted, this is where the hypervisor double-faults. When
   Xen survives, the fault is bounced back to the guest kernel, which
   logs it and fails the access. *)
let guest_fault t (fault : Paging.fault) =
  (match Hv.deliver_fault t.hv ~vector:Idt.vector_page_fault ~detail:"guest page fault" with
  | Cpu.Handled _ ->
      printk t
        (Format.asprintf "BUG: unable to handle kernel paging request at %a" Addr.pp_vaddr
           fault.Paging.fault_vaddr)
  | Cpu.Double_fault_panic _ | Cpu.Triple_fault -> ());
  Error fault

let access t ~ring f =
  match f ~ring ~cr3:t.domain.Domain.l4_mfn with
  | Ok v -> Ok v
  | Error fault -> guest_fault t fault

(* guest stores carry the writing domain as origin; a hypercall issued
   underneath installs its own (more specific) origin on top *)
let write_access t ~ring f =
  Phys_mem.with_origin t.hv.Hv.mem
    (Provenance.Guest_write t.domain.Domain.id)
    (fun () -> access t ~ring f)

let trace_mem t op va ~len ~data =
  trace_boundary t (fun () ->
      Trace.Guest_mem { domid = t.domain.Domain.id; op; va; len; data })

let read_u64 t va =
  trace_mem t Trace.Op_read_u64 va ~len:8 ~data:"";
  access t ~ring:Cpu.Kernel (fun ~ring ~cr3 -> Cpu.read_u64 t.hv.Hv.cpu ~ring ~cr3 va)

let write_u64 t va v =
  (if Trace.recording t.hv.Hv.trace then
     let data = Bytes.create 8 in
     Bytes.set_int64_le data 0 v;
     trace_mem t Trace.Op_write_u64 va ~len:8 ~data:(Bytes.unsafe_to_string data));
  write_access t ~ring:Cpu.Kernel (fun ~ring ~cr3 -> Cpu.write_u64 t.hv.Hv.cpu ~ring ~cr3 va v)

let read_bytes t va len =
  trace_mem t Trace.Op_read_bytes va ~len ~data:"";
  access t ~ring:Cpu.Kernel (fun ~ring ~cr3 -> Cpu.read_bytes t.hv.Hv.cpu ~ring ~cr3 va len)

let write_bytes t va b =
  if Trace.recording t.hv.Hv.trace then
    trace_mem t Trace.Op_write_bytes va ~len:(Bytes.length b) ~data:(Bytes.to_string b);
  write_access t ~ring:Cpu.Kernel (fun ~ring ~cr3 -> Cpu.write_bytes t.hv.Hv.cpu ~ring ~cr3 va b)

(* MMUEXT_INVLPG_LOCAL: a PV kernel (or an exploit running in it) drops
   the cached translation of a page it just remapped by hand. *)
let invlpg t va =
  trace_boundary t (fun () -> Trace.Guest_invlpg { domid = t.domain.Domain.id; va });
  Cpu.tlb_invlpg t.hv.Hv.cpu ~cr3:t.domain.Domain.l4_mfn va

let user_write_u64 t va v =
  (if Trace.recording t.hv.Hv.trace then
     let data = Bytes.create 8 in
     Bytes.set_int64_le data 0 v;
     trace_mem t Trace.Op_user_write_u64 va ~len:8 ~data:(Bytes.unsafe_to_string data));
  write_access t ~ring:Cpu.User (fun ~ring ~cr3 -> Cpu.write_u64 t.hv.Hv.cpu ~ring ~cr3 va v)

let user_read_u64 t va =
  trace_mem t Trace.Op_user_read_u64 va ~len:8 ~data:"";
  access t ~ring:Cpu.User (fun ~ring ~cr3 -> Cpu.read_u64 t.hv.Hv.cpu ~ring ~cr3 va)

(* --- shell ------------------------------------------------------------ *)

let processes t = t.procs

(* 'ps' is a kernel service, so it is resolved here before the generic
   shell builtins run. *)
let shell t ~uid cmd =
  if String.trim cmd = "ps" then Process.ps_output t.procs
  else Shell.run { Shell.hostname = hostname t; fs = t.guest_fs; uid } cmd

(* --- vDSO backdoor ----------------------------------------------------- *)

module Backdoor = struct
  let magic = "BDK1"

  type payload =
    | Run_as_root of string
    | Reverse_shell of { host : string; port : int }

  let encode payload =
    let kind, body =
      match payload with
      | Run_as_root cmd -> (1, cmd)
      | Reverse_shell { host; port } -> (2, Printf.sprintf "%s:%d" host port)
    in
    let buf = Bytes.make (8 + String.length body) '\000' in
    Bytes.blit_string magic 0 buf 0 4;
    Bytes.set buf 4 (Char.chr kind);
    Bytes.set_uint16_le buf 5 (String.length body);
    Bytes.blit_string body 0 buf 8 (String.length body);
    buf

  let decode blob =
    if Bytes.length blob < 8 || Bytes.sub_string blob 0 4 <> magic then None
    else
      let kind = Char.code (Bytes.get blob 4) in
      let len = Bytes.get_uint16_le blob 5 in
      if Bytes.length blob < 8 + len then None
      else
        let body = Bytes.sub_string blob 8 len in
        match kind with
        | 1 -> Some (Run_as_root body)
        | 2 -> (
            match String.rindex_opt body ':' with
            | Some i -> (
                let host = String.sub body 0 i in
                match int_of_string_opt (String.sub body (i + 1) (String.length body - i - 1)) with
                | Some port -> Some (Reverse_shell { host; port })
                | None -> None)
            | None -> None)
        | _ -> None
end

(* --- event-channel delivery -------------------------------------------- *)

let bind_irq_handler t ~port f = Hashtbl.replace t.irq_handlers port f
let irqs_handled t = t.irqs_handled

(* Drain pending event channels, bounded per tick like a real kernel's
   softirq budget: a storm keeps the backlog (and the host's pending
   count) high instead of looping forever. *)
let irq_budget = 8

let drain_events t =
  let pending = Event_channel.pending_ports t.domain.Domain.events in
  List.iteri
    (fun i port ->
      if i < irq_budget && Event_channel.consume t.domain.Domain.events port then begin
        t.irqs_handled <- t.irqs_handled + 1;
        match Hashtbl.find_opt t.irq_handlers port with Some f -> f () | None -> ()
      end)
    pending

(* The balloon driver: honour the toolstack's memory/target by
   releasing the highest releasable data pages. Page-table and special
   pages are never ballooned out. *)
let balloon t =
  match
    Xenstore.read t.hv.Hv.xenstore ~caller:t.domain.Domain.id
      (Xenstore.domain_path t.domain.Domain.id "memory/target")
  with
  | Error _ -> ()
  | Ok target_str -> (
      match int_of_string_opt (String.trim target_str) with
      | None -> ()
      | Some target ->
          let populated = List.length (Domain.populated_pfns t.domain) in
          if target < populated then begin
            let releasable pfn =
              pfn > 2
              &&
              match Domain.mfn_of_pfn t.domain pfn with
              | Some mfn -> not (List.mem mfn t.domain.Domain.pt_pages)
              | None -> false
            in
            let candidates =
              List.filter releasable (List.rev (Domain.populated_pfns t.domain))
            in
            let to_release = populated - target in
            List.iteri
              (fun i pfn ->
                if i < to_release then begin
                  ignore
                    (hypercall t
                       (Hypercall.Update_va_mapping
                          { va = Domain.kernel_vaddr_of_pfn pfn; value = Pte.none }));
                  match hypercall t (Hypercall.Decrease_reservation [ pfn ]) with
                  | Ok _ -> printk t (Printf.sprintf "balloon: released pfn %d (target %d)" pfn target)
                  | Error _ -> ()
                end)
              candidates
          end)

let tick t =
  let tr = t.hv.Hv.trace in
  trace_boundary t (fun () -> Trace.Kernel_tick { domid = t.domain.Domain.id });
  Trace.enter tr;
  Fun.protect ~finally:(fun () -> Trace.leave tr) @@ fun () ->
  if not (Hv.is_crashed t.hv) then begin
    drain_events t;
    balloon t;
    (* user processes run and call into the vDSO *)
    Process.on_tick t.procs;
    let vdso = vdso_mfn t in
    (* user code *executes* these bytes: the causal edge a bystander
       compromise is attributed through *)
    Phys_mem.observe t.hv.Hv.mem ~consumer:Provenance.Vdso_exec ~mfn:vdso
      ~off:Builder.Vdso.code_off ~len:Builder.Vdso.code_len;
    let frame = Phys_mem.frame_ro t.hv.Hv.mem vdso in
    let blob = Frame.read_bytes frame Builder.Vdso.code_off Builder.Vdso.code_len in
    match Backdoor.decode blob with
    | None -> ()
    | Some (Backdoor.Run_as_root cmd) -> ignore (shell t ~uid:0 cmd)
    | Some (Backdoor.Reverse_shell { host; port }) ->
        if
          (* keep a single connection per victim/listener pair *)
          not
            (List.exists
               (fun c -> c.Netsim.from_host = hostname t)
               (Netsim.connections_to t.net ~host ~port))
        then
          ignore
            (Netsim.connect t.net ~from_host:(hostname t) ~from_ip:(ip t) ~host ~port ~uid:0
               ~exec:(fun cmd -> shell t ~uid:0 cmd))
  end
