(** A simulated network: listeners and TCP-ish connections between
    hosts.

    Supports the XSA-148-priv use case: the attacker runs a listener on
    a remote host ([nc -l -vvv -p 1234]); the backdoor installed in the
    victim's vDSO opens a reverse shell back to it; commands typed on
    the remote side execute on the victim with the backdoor's uid. *)

type connection = {
  conn_id : int;
  from_host : string;
  from_ip : string;
  to_host : string;
  port : int;
  conn_uid : int;  (** privilege of the shell behind the connection *)
  exec : string -> string;  (** run a command on the connecting side *)
  transcript : Buffer.t;
  conn_trace : Trace.t option;  (** tracer captured at connect time *)
}

type t

val create : unit -> t

val set_tracer : t -> Trace.t -> unit
(** Connections opened after this carry the tracer, so commands typed
    over them are recorded as boundary events. *)

val listen : t -> host:string -> port:int -> unit
(** Start (or restart) a listener; its banner is recorded in the
    transcript of connections it later accepts. *)

val is_listening : t -> host:string -> port:int -> bool

val connect :
  t -> from_host:string -> from_ip:string -> host:string -> port:int -> uid:int ->
  exec:(string -> string) -> (connection, string) result
(** Returns [Error] when nobody listens on [(host, port)]. *)

val run_command : connection -> string -> string
(** Execute a command over the connection and append the exchange to
    the transcript. *)

val connections_to : t -> host:string -> port:int -> connection list
val transcript : connection -> string
