type connection = {
  conn_id : int;
  from_host : string;
  from_ip : string;
  to_host : string;
  port : int;
  conn_uid : int;
  exec : string -> string;
  transcript : Buffer.t;
  conn_trace : Trace.t option;
}

type t = {
  mutable listeners : (string * int) list;
  mutable connections : connection list;
  mutable next_id : int;
  mutable tracer : Trace.t option;
}

let create () = { listeners = []; connections = []; next_id = 0; tracer = None }
let set_tracer t tr = t.tracer <- Some tr

(* Opening a listener is a management-plane input, so it is a boundary
   event — emitted here (not in Testbed) so that replaying the record
   through [Substrate.apply_event] re-emits it at the same stamp. *)
let listen t ~host ~port =
  (match t.tracer with
  | Some tr when Trace.recording tr && Trace.top_level tr ->
      Trace.emit tr (Trace.Net_listen { host; port })
  | _ -> ());
  if not (List.mem (host, port) t.listeners) then t.listeners <- (host, port) :: t.listeners

let is_listening t ~host ~port = List.mem (host, port) t.listeners

let connect t ~from_host ~from_ip ~host ~port ~uid ~exec =
  if not (is_listening t ~host ~port) then
    Error (Printf.sprintf "connect: connection refused to %s:%d" host port)
  else begin
    let transcript = Buffer.create 256 in
    Buffer.add_string transcript (Printf.sprintf "Listening on [0.0.0.0] (family 0, port %d)\n" port);
    Buffer.add_string transcript
      (Printf.sprintf "Connection from [%s] port %d [tcp/*] accepted\n" from_ip port);
    let conn =
      {
        conn_id = t.next_id;
        from_host;
        from_ip;
        to_host = host;
        port;
        conn_uid = uid;
        exec;
        transcript;
        conn_trace = t.tracer;
      }
    in
    t.next_id <- t.next_id + 1;
    t.connections <- conn :: t.connections;
    Ok conn
  end

(* A command typed on the remote side is an input to the testbed, so it
   is a boundary event; the shell execution underneath is bracketed
   with enter/leave like any other recorded crossing. *)
let run_command conn cmd =
  let out =
    match conn.conn_trace with
    | None -> conn.exec cmd
    | Some tr ->
        if Trace.recording tr && Trace.top_level tr then
          Trace.emit tr
            (Trace.Net_cmd
               { to_host = conn.to_host; port = conn.port; conn_id = conn.conn_id; cmd });
        Trace.charge tr Vclock.Netsim_cmd;
        Trace.enter tr;
        Fun.protect ~finally:(fun () -> Trace.leave tr) @@ fun () -> conn.exec cmd
  in
  Buffer.add_string conn.transcript cmd;
  Buffer.add_char conn.transcript '\n';
  if out <> "" then begin
    Buffer.add_string conn.transcript out;
    Buffer.add_char conn.transcript '\n'
  end;
  out

let connections_to t ~host ~port =
  List.filter (fun c -> c.to_host = host && c.port = port) t.connections

let transcript conn = Buffer.contents conn.transcript
