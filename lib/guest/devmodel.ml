(* The testbed-resident device model: an Fdc instance serving one guest
   domain, wired into the trace/vclock/provenance stack. See
   devmodel.mli for the contract. *)

type t = {
  fdc : Fdc.t;
  hv : Hv.t;
  served : int;
  mutable corrupt_origin : int option;
  mutable radiated : bool;
}

let op_guest_io = 100
let op_inject = 101

(* the injector-surface action code for Injector_access records; the
   Access codes 0-3 are machine-memory actions, 4 is the device-model
   process-memory surface *)
let dm_action_code = 4

let backdoor_command = "echo \"dm:$(id)@$(hostname)\" > /tmp/dm_payload_log"

let create hv ~served =
  let v = hv.Hv.version in
  {
    fdc =
      Fdc.create
        {
          Fdc.venom_vulnerable = not (Version.venom_fixed v);
          handler_validation = Version.dm_handler_validation v;
        };
    hv;
    served;
    corrupt_origin = None;
    radiated = false;
  }

let fdc t = t.fdc
let served t = t.served
let corrupted t = not (Fdc.handler_intact t.fdc)
let radiated t = t.radiated

let reset t =
  Fdc.reset t.fdc;
  t.corrupt_origin <- None;
  t.radiated <- false

(* Record the first corruption's origin: injector ordinal [n] when the
   corrupting write came through the gated injection surface, 0 when it
   came through the guest-facing (VENOM) path. *)
let note_corruption t origin =
  if corrupted t && t.corrupt_origin = None then t.corrupt_origin <- Some origin

let guest_io t ~domid data =
  let tr = t.hv.Hv.trace in
  if Trace.recording tr && Trace.top_level tr then
    Trace.emit tr
      (Trace.Backend_op
         { op = op_guest_io; arg1 = Int64.of_int domid; arg2 = 0L;
           data = Bytes.to_string data });
  Trace.enter tr;
  Fun.protect ~finally:(fun () -> Trace.leave tr) @@ fun () ->
  Trace.charge tr Vclock.Dm_io;
  match Fdc.issue t.fdc (Fdc.Fd_write_data data) with
  | Ok () ->
      note_corruption t 0;
      Ok ()
  | Error _ -> Error Errno.EINVAL

let inject t data =
  let tr = t.hv.Hv.trace in
  if Trace.recording tr && Trace.top_level tr then
    Trace.emit tr
      (Trace.Backend_op
         { op = op_inject; arg1 = Int64.of_int t.served; arg2 = 0L;
           data = Bytes.to_string data });
  Trace.enter tr;
  Fun.protect ~finally:(fun () -> Trace.leave tr) @@ fun () ->
  Trace.charge tr Vclock.Dm_io;
  Trace.note_injector tr;
  if Trace.recording tr then
    Trace.emit tr
      (Trace.Injector_access
         { action = dm_action_code; addr = Int64.of_int Fdc.handler_offset;
           len = Bytes.length data });
  let n = Trace.Counters.injector_accesses (Trace.counters tr) in
  Fdc.inject_overflow t.fdc data;
  note_corruption t n;
  Ok ()

(* One device-model turn, run from the scheduler round: dispatch pending
   FDC work through the handler pointer. A hijacked handler radiates the
   compromise into the served guest exactly once — a backdoor written
   into the guest's vDSO page, labelled with the {!Provenance.
   Device_model} origin so a casualty found in that (bystander) domain
   still attributes back to whoever corrupted the device model. *)
let kick t =
  match Fdc.kick t.fdc with
  | `Dispatched | `Rejected_corrupt_handler -> ()
  | `Hijacked _ ->
      if not t.radiated then begin
        t.radiated <- true;
        match Hv.find_domain t.hv t.served with
        | None -> ()
        | Some dom -> (
            match Domain.mfn_of_pfn dom dom.Domain.vdso_pfn with
            | None -> ()
            | Some mfn ->
                let payload =
                  Kernel.Backdoor.encode (Kernel.Backdoor.Run_as_root backdoor_command)
                in
                let ma =
                  Int64.add (Addr.maddr_of_mfn mfn) (Int64.of_int Builder.Vdso.code_off)
                in
                let origin =
                  Provenance.Device_model
                    (match t.corrupt_origin with Some n -> n | None -> 0)
                in
                Phys_mem.with_origin t.hv.Hv.mem origin (fun () ->
                    Phys_mem.write_bytes t.hv.Hv.mem ma payload))
      end
