(* Event tracer: always-on scalar counters plus an optional binary ring
   of typed records (xentrace style). See trace.mli for the contract. *)

(* --- counters --------------------------------------------------------- *)

module Counters = struct
  type t = {
    tbl : (int, int) Hashtbl.t;  (* hypercalls by number *)
    mutable failed : int;
    mutable faults : int;
    mutable double_faults : int;
    mutable flushes : int;
    mutable invlpgs : int;
    mutable page_type_changes : int;
    mutable grant_ops : int;
    mutable evtchn_ops : int;
    mutable injector_accesses : int;
    mutable console_lines : int;
    mutable vmi_scans : int;
    mutable vmi_findings : int;
    mutable vmi_frames : int;
  }

  type snapshot = {
    s_hypercalls : (int * int) list;
    s_failed : int;
    s_faults : int;
    s_double_faults : int;
    s_flushes : int;
    s_invlpgs : int;
    s_page_type_changes : int;
    s_grant_ops : int;
    s_evtchn_ops : int;
    s_injector_accesses : int;
    s_console_lines : int;
    s_vmi_scans : int;
    s_vmi_findings : int;
    s_vmi_frames : int;
  }

  let create () =
    {
      tbl = Hashtbl.create 17;
      failed = 0;
      faults = 0;
      double_faults = 0;
      flushes = 0;
      invlpgs = 0;
      page_type_changes = 0;
      grant_ops = 0;
      evtchn_ops = 0;
      injector_accesses = 0;
      console_lines = 0;
      vmi_scans = 0;
      vmi_findings = 0;
      vmi_frames = 0;
    }

  let hypercalls t =
    List.sort compare (Hashtbl.fold (fun n c acc -> (n, c) :: acc) t.tbl [])

  let hypercalls_failed t = t.failed
  let faults t = t.faults
  let double_faults t = t.double_faults
  let flushes t = t.flushes
  let invlpgs t = t.invlpgs
  let page_type_changes t = t.page_type_changes
  let grant_ops t = t.grant_ops
  let evtchn_ops t = t.evtchn_ops
  let injector_accesses t = t.injector_accesses
  let console_lines t = t.console_lines
  let vmi_scans t = t.vmi_scans
  let vmi_findings t = t.vmi_findings
  let vmi_frames t = t.vmi_frames

  let snapshot t =
    {
      s_hypercalls = hypercalls t;
      s_failed = t.failed;
      s_faults = t.faults;
      s_double_faults = t.double_faults;
      s_flushes = t.flushes;
      s_invlpgs = t.invlpgs;
      s_page_type_changes = t.page_type_changes;
      s_grant_ops = t.grant_ops;
      s_evtchn_ops = t.evtchn_ops;
      s_injector_accesses = t.injector_accesses;
      s_console_lines = t.console_lines;
      s_vmi_scans = t.vmi_scans;
      s_vmi_findings = t.vmi_findings;
      s_vmi_frames = t.vmi_frames;
    }

  let restore t s =
    Hashtbl.reset t.tbl;
    List.iter (fun (n, c) -> Hashtbl.replace t.tbl n c) s.s_hypercalls;
    t.failed <- s.s_failed;
    t.faults <- s.s_faults;
    t.double_faults <- s.s_double_faults;
    t.flushes <- s.s_flushes;
    t.invlpgs <- s.s_invlpgs;
    t.page_type_changes <- s.s_page_type_changes;
    t.grant_ops <- s.s_grant_ops;
    t.evtchn_ops <- s.s_evtchn_ops;
    t.injector_accesses <- s.s_injector_accesses;
    t.console_lines <- s.s_console_lines;
    t.vmi_scans <- s.s_vmi_scans;
    t.vmi_findings <- s.s_vmi_findings;
    t.vmi_frames <- s.s_vmi_frames
end

(* --- events ----------------------------------------------------------- *)

type mem_op =
  | Op_read_u64
  | Op_write_u64
  | Op_read_bytes
  | Op_write_bytes
  | Op_user_read_u64
  | Op_user_write_u64
  | Op_probe_u64

let mem_op_code = function
  | Op_read_u64 -> 0
  | Op_write_u64 -> 1
  | Op_read_bytes -> 2
  | Op_write_bytes -> 3
  | Op_user_read_u64 -> 4
  | Op_user_write_u64 -> 5
  | Op_probe_u64 -> 6

let mem_op_of_code = function
  | 0 -> Some Op_read_u64
  | 1 -> Some Op_write_u64
  | 2 -> Some Op_read_bytes
  | 3 -> Some Op_write_bytes
  | 4 -> Some Op_user_read_u64
  | 5 -> Some Op_user_write_u64
  | 6 -> Some Op_probe_u64
  | _ -> None

let mem_op_name = function
  | Op_read_u64 -> "read_u64"
  | Op_write_u64 -> "write_u64"
  | Op_read_bytes -> "read_bytes"
  | Op_write_bytes -> "write_bytes"
  | Op_user_read_u64 -> "user_read_u64"
  | Op_user_write_u64 -> "user_write_u64"
  | Op_probe_u64 -> "probe_u64"

type event =
  | Hypercall of { domid : int; number : int; digest : int64; payload : string }
  | Guest_mem of { domid : int; op : mem_op; va : int64; len : int; data : string }
  | Guest_invlpg of { domid : int; va : int64 }
  | Kernel_tick of { domid : int }
  | Sched_round
  | Net_listen of { host : string; port : int }
  | Net_cmd of { to_host : string; port : int; conn_id : int; cmd : string }
  | Xenstore_write of { caller : int; injected : bool; path : string; value : string }
  | Hypercall_ret of { domid : int; number : int; rc : int64; failed : bool }
  | Fault of { vector : int; escalation : int }
  | Tlb_flush_all
  | Tlb_invlpg of { va : int64 }
  | Page_type of { mfn : int; from_type : int; to_type : int }
  | Grant_op of { domid : int; op : int }
  | Evtchn_op of { domid : int; op : int }
  | Injector_access of { action : int; addr : int64; len : int }
  | Console of { len : int; digest : int64 }
  | Monitor_verdict of { violations : int; classes : int }
  | Panic of { reason : string }
  | Vmi_scan of { detector : string; findings : int; frames : int }
  | Backend_op of { op : int; arg1 : int64; arg2 : int64; data : string }
      (* a backend-specific boundary crossing (KVM ioctl, VM entry,
         fault delivery); carries its payload so writes replay *)
  | Provenance_edge of { consumer : int; mfn : int; off : int; len : int; labels : int list }
      (* a consumer interpreted tainted bytes: links this record's seq
         to the origin labels of the bytes read (see Provenance) *)
  | Scn_edge of { section : int; prev : int; pc : int }
      (* one executed scenario-bytecode instruction (prev-pc -> pc edge);
         boundary, so replay can refeed the coverage map without
         re-running the bytecode VM *)

let is_boundary = function
  | Hypercall { payload; _ } -> payload <> ""
  | Guest_mem _ | Guest_invlpg _ | Kernel_tick _ | Sched_round | Net_listen _ | Net_cmd _
  | Xenstore_write _ | Backend_op _ | Scn_edge _ ->
      true
  | Hypercall_ret _ | Fault _ | Tlb_flush_all | Tlb_invlpg _ | Page_type _ | Grant_op _
  | Evtchn_op _ | Injector_access _ | Console _ | Monitor_verdict _ | Panic _ | Vmi_scan _
  | Provenance_edge _ ->
      false

let event_name = function
  | Hypercall _ -> "hypercall"
  | Guest_mem _ -> "guest_mem"
  | Guest_invlpg _ -> "guest_invlpg"
  | Kernel_tick _ -> "kernel_tick"
  | Sched_round -> "sched_round"
  | Net_listen _ -> "net_listen"
  | Net_cmd _ -> "net_cmd"
  | Xenstore_write _ -> "xenstore_write"
  | Hypercall_ret _ -> "hypercall_ret"
  | Fault _ -> "fault"
  | Tlb_flush_all -> "tlb_flush_all"
  | Tlb_invlpg _ -> "tlb_invlpg"
  | Page_type _ -> "page_type"
  | Grant_op _ -> "grant_op"
  | Evtchn_op _ -> "evtchn_op"
  | Injector_access _ -> "injector_access"
  | Console _ -> "console"
  | Monitor_verdict _ -> "monitor_verdict"
  | Panic _ -> "panic"
  | Vmi_scan _ -> "vmi_scan"
  | Backend_op _ -> "backend_op"
  | Provenance_edge _ -> "provenance_edge"
  | Scn_edge _ -> "scn_edge"

let code_of_event = function
  | Hypercall _ -> 1
  | Guest_mem _ -> 2
  | Guest_invlpg _ -> 3
  | Kernel_tick _ -> 4
  | Sched_round -> 5
  | Net_listen _ -> 6
  | Net_cmd _ -> 7
  | Xenstore_write _ -> 8
  | Hypercall_ret _ -> 16
  | Fault _ -> 17
  | Tlb_flush_all -> 18
  | Tlb_invlpg _ -> 19
  | Page_type _ -> 20
  | Grant_op _ -> 21
  | Evtchn_op _ -> 22
  | Injector_access _ -> 23
  | Console _ -> 24
  | Monitor_verdict _ -> 25
  | Panic _ -> 26
  | Vmi_scan _ -> 27
  | Backend_op _ -> 28
  | Provenance_edge _ -> 29
  | Scn_edge _ -> 30

(* --- binary encoding -------------------------------------------------- *)

let put_u8 b v = Buffer.add_uint8 b (v land 0xff)
let put_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let put_i64 b v = Buffer.add_int64_le b v

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let encode_payload b = function
  | Hypercall { domid; number; digest; payload } ->
      put_u32 b domid;
      put_u32 b number;
      put_i64 b digest;
      put_str b payload
  | Guest_mem { domid; op; va; len; data } ->
      put_u32 b domid;
      put_u8 b (mem_op_code op);
      put_i64 b va;
      put_u32 b len;
      put_str b data
  | Guest_invlpg { domid; va } ->
      put_u32 b domid;
      put_i64 b va
  | Kernel_tick { domid } -> put_u32 b domid
  | Sched_round -> ()
  | Net_listen { host; port } ->
      put_str b host;
      put_u32 b port
  | Net_cmd { to_host; port; conn_id; cmd } ->
      put_str b to_host;
      put_u32 b port;
      put_u32 b conn_id;
      put_str b cmd
  | Xenstore_write { caller; injected; path; value } ->
      put_u32 b caller;
      put_u8 b (if injected then 1 else 0);
      put_str b path;
      put_str b value
  | Hypercall_ret { domid; number; rc; failed } ->
      put_u32 b domid;
      put_u32 b number;
      put_i64 b rc;
      put_u8 b (if failed then 1 else 0)
  | Fault { vector; escalation } ->
      put_u32 b vector;
      put_u8 b escalation
  | Tlb_flush_all -> ()
  | Tlb_invlpg { va } -> put_i64 b va
  | Page_type { mfn; from_type; to_type } ->
      put_u32 b mfn;
      put_u8 b from_type;
      put_u8 b to_type
  | Grant_op { domid; op } ->
      put_u32 b domid;
      put_u8 b op
  | Evtchn_op { domid; op } ->
      put_u32 b domid;
      put_u8 b op
  | Injector_access { action; addr; len } ->
      put_u8 b action;
      put_i64 b addr;
      put_u32 b len
  | Console { len; digest } ->
      put_u32 b len;
      put_i64 b digest
  | Monitor_verdict { violations; classes } ->
      put_u32 b violations;
      put_u32 b classes
  | Panic { reason } -> put_str b reason
  | Vmi_scan { detector; findings; frames } ->
      put_str b detector;
      put_u32 b findings;
      put_u32 b frames
  | Backend_op { op; arg1; arg2; data } ->
      put_u32 b op;
      put_i64 b arg1;
      put_i64 b arg2;
      put_str b data
  | Provenance_edge { consumer; mfn; off; len; labels } ->
      put_u8 b consumer;
      put_u32 b mfn;
      put_u32 b off;
      put_u32 b len;
      put_u8 b (List.length labels);
      List.iter (put_u8 b) labels
  | Scn_edge { section; prev; pc } ->
      put_u8 b section;
      put_u32 b prev;
      put_u32 b pc

(* A little cursor over a linearized trace image. *)
type reader = { src : string; mutable pos : int }

let need r n = if r.pos + n > String.length r.src then failwith "Trace: truncated record"

let get_u8 r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.src r.pos) in
  r.pos <- r.pos + 4;
  v

let get_i64 r =
  need r 8;
  let v = String.get_int64_le r.src r.pos in
  r.pos <- r.pos + 8;
  v

let get_str r =
  let n = get_u32 r in
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let decode_payload code r =
  match code with
  | 1 ->
      let domid = get_u32 r in
      let number = get_u32 r in
      let digest = get_i64 r in
      let payload = get_str r in
      Hypercall { domid; number; digest; payload }
  | 2 ->
      let domid = get_u32 r in
      let op =
        match mem_op_of_code (get_u8 r) with
        | Some op -> op
        | None -> failwith "Trace: bad mem_op"
      in
      let va = get_i64 r in
      let len = get_u32 r in
      let data = get_str r in
      Guest_mem { domid; op; va; len; data }
  | 3 ->
      let domid = get_u32 r in
      let va = get_i64 r in
      Guest_invlpg { domid; va }
  | 4 -> Kernel_tick { domid = get_u32 r }
  | 5 -> Sched_round
  | 6 ->
      let host = get_str r in
      let port = get_u32 r in
      Net_listen { host; port }
  | 7 ->
      let to_host = get_str r in
      let port = get_u32 r in
      let conn_id = get_u32 r in
      let cmd = get_str r in
      Net_cmd { to_host; port; conn_id; cmd }
  | 8 ->
      let caller = get_u32 r in
      let injected = get_u8 r = 1 in
      let path = get_str r in
      let value = get_str r in
      Xenstore_write { caller; injected; path; value }
  | 16 ->
      let domid = get_u32 r in
      let number = get_u32 r in
      let rc = get_i64 r in
      let failed = get_u8 r = 1 in
      Hypercall_ret { domid; number; rc; failed }
  | 17 ->
      let vector = get_u32 r in
      let escalation = get_u8 r in
      Fault { vector; escalation }
  | 18 -> Tlb_flush_all
  | 19 -> Tlb_invlpg { va = get_i64 r }
  | 20 ->
      let mfn = get_u32 r in
      let from_type = get_u8 r in
      let to_type = get_u8 r in
      Page_type { mfn; from_type; to_type }
  | 21 ->
      let domid = get_u32 r in
      let op = get_u8 r in
      Grant_op { domid; op }
  | 22 ->
      let domid = get_u32 r in
      let op = get_u8 r in
      Evtchn_op { domid; op }
  | 23 ->
      let action = get_u8 r in
      let addr = get_i64 r in
      let len = get_u32 r in
      Injector_access { action; addr; len }
  | 24 ->
      let len = get_u32 r in
      let digest = get_i64 r in
      Console { len; digest }
  | 25 ->
      let violations = get_u32 r in
      let classes = get_u32 r in
      Monitor_verdict { violations; classes }
  | 26 -> Panic { reason = get_str r }
  | 27 ->
      let detector = get_str r in
      let findings = get_u32 r in
      let frames = get_u32 r in
      Vmi_scan { detector; findings; frames }
  | 28 ->
      let op = get_u32 r in
      let arg1 = get_i64 r in
      let arg2 = get_i64 r in
      let data = get_str r in
      Backend_op { op; arg1; arg2; data }
  | 29 ->
      let consumer = get_u8 r in
      let mfn = get_u32 r in
      let off = get_u32 r in
      let len = get_u32 r in
      let n = get_u8 r in
      let labels = List.init n (fun _ -> get_u8 r) in
      Provenance_edge { consumer; mfn; off; len; labels }
  | 30 ->
      let section = get_u8 r in
      let prev = get_u32 r in
      let pc = get_u32 r in
      Scn_edge { section; prev; pc }
  | n -> failwith (Printf.sprintf "Trace: unknown record code %d" n)

(* --- the ring --------------------------------------------------------- *)

type record = { seq : int; vts : int64; event : event }

type t = {
  mutable enabled : bool;
  mutable buf : Bytes.t;
  mutable start : int;  (* offset of the oldest live byte *)
  mutable used : int;
  mutable seq_next : int;
  mutable dropped : int;
  mutable depth : int;
  counters : Counters.t;
  vclock : Vclock.t;
  scratch : Buffer.t;
  mutable cov : Coverage.t option;
      (* coverage collector; detached by default — one option match per
         instrumented site, so coverage-off campaigns bench unchanged *)
}

let default_capacity = 4 * 1024 * 1024

let create () =
  {
    enabled = false;
    buf = Bytes.create 0;
    start = 0;
    used = 0;
    seq_next = 0;
    dropped = 0;
    depth = 0;
    counters = Counters.create ();
    vclock = Vclock.create ();
    scratch = Buffer.create 256;
    cov = None;
  }

let recording t = t.enabled
let counters t = t.counters
let coverage t = t.cov
let set_coverage t c = t.cov <- c
let dropped t = t.dropped
let seq t = t.seq_next
let vclock t = t.vclock
let vts t = Vclock.now t.vclock
let charge t op = Vclock.charge t.vclock op
let charge_n t op n = Vclock.charge_n t.vclock op n

let clear t =
  t.start <- 0;
  t.used <- 0;
  t.seq_next <- 0;
  t.dropped <- 0

let enable ?(capacity_bytes = default_capacity) t =
  if capacity_bytes < 64 then invalid_arg "Trace.enable: capacity too small";
  if Bytes.length t.buf <> capacity_bytes then t.buf <- Bytes.create capacity_bytes;
  clear t;
  t.enabled <- true

let disable t = t.enabled <- false
let enter t = t.depth <- t.depth + 1
let leave t = if t.depth > 0 then t.depth <- t.depth - 1
let top_level t = t.depth = 0

(* Modular arithmetic over the byte ring: a frame may wrap the end of
   [buf], so reads and writes happen in at most two pieces. *)

let ring_read_u32 t off =
  let cap = Bytes.length t.buf in
  let b i = Bytes.get_uint8 t.buf ((t.start + off + i) mod cap) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let evict_oldest t =
  let frame = 4 + ring_read_u32 t 0 in
  t.start <- (t.start + frame) mod Bytes.length t.buf;
  t.used <- t.used - frame;
  t.dropped <- t.dropped + 1

let ring_append t (src : Buffer.t) =
  let cap = Bytes.length t.buf in
  let n = Buffer.length src in
  let tail = (t.start + t.used) mod cap in
  let first = min n (cap - tail) in
  Buffer.blit src 0 t.buf tail first;
  if n > first then Buffer.blit src first t.buf 0 (n - first);
  t.used <- t.used + n

let emit t event =
  if t.enabled then begin
    (match t.cov with
    | Some c ->
        (* feed every code a replay regenerates; detector scans and the
           closing monitor verdict exist only on the recording side, so
           they must not shape the map *)
        let code = code_of_event event in
        if code <> 25 && code <> 27 then Coverage.note_record c code
    | None -> ());
    let s = t.seq_next in
    t.seq_next <- s + 1;
    Buffer.clear t.scratch;
    (* frame: [u32 len | u32 seq | i64 vts | u8 code | payload] *)
    put_u32 t.scratch 0;
    put_u32 t.scratch s;
    put_i64 t.scratch (Vclock.now t.vclock);
    put_u8 t.scratch (code_of_event event);
    encode_payload t.scratch event;
    let frame = Buffer.length t.scratch in
    let body = frame - 4 in
    (* patch the length prefix in place *)
    let img = Buffer.to_bytes t.scratch in
    Bytes.set_int32_le img 0 (Int32.of_int body);
    let cap = Bytes.length t.buf in
    if frame > cap then t.dropped <- t.dropped + 1
    else begin
      while t.used + frame > cap do
        evict_oldest t
      done;
      Buffer.clear t.scratch;
      Buffer.add_bytes t.scratch img;
      ring_append t t.scratch
    end
  end

let to_bytes t =
  let cap = Bytes.length t.buf in
  if t.used = 0 then ""
  else begin
    let out = Bytes.create t.used in
    let first = min t.used (cap - t.start) in
    Bytes.blit t.buf t.start out 0 first;
    if t.used > first then Bytes.blit t.buf 0 out first (t.used - first);
    Bytes.unsafe_to_string out
  end

let records_of_string src =
  let r = { src; pos = 0 } in
  let rec go acc =
    if r.pos >= String.length src then List.rev acc
    else begin
      let body = get_u32 r in
      let stop = r.pos + body in
      let seq = get_u32 r in
      let vts = get_i64 r in
      let code = get_u8 r in
      let event = decode_payload code r in
      if r.pos <> stop then failwith "Trace: record length mismatch";
      go ({ seq; vts; event } :: acc)
    end
  in
  go []

let records t = records_of_string (to_bytes t)

(* Re-frame a current image into the v1 layout (no [vts] word), so
   fixtures captured before the format bump stay comparable: the
   seq/code/payload bytes of each frame are preserved verbatim. *)
let strip_vts src =
  let r = { src; pos = 0 } in
  let b = Buffer.create (String.length src) in
  let rec go () =
    if r.pos >= String.length src then Buffer.contents b
    else begin
      let body = get_u32 r in
      let stop = r.pos + body in
      let seq = get_u32 r in
      let _vts = get_i64 r in
      need r (stop - r.pos);
      let rest = String.sub r.src r.pos (stop - r.pos) in
      r.pos <- stop;
      put_u32 b (body - 8);
      put_u32 b seq;
      Buffer.add_string b rest;
      go ()
    end
  in
  go ()

(* --- counters API ----------------------------------------------------- *)

let note_hypercall t ~number ~failed =
  let c = t.counters in
  Hashtbl.replace c.Counters.tbl number
    (1 + Option.value ~default:0 (Hashtbl.find_opt c.Counters.tbl number));
  if failed then c.Counters.failed <- c.Counters.failed + 1

let note_fault t ~double =
  let c = t.counters in
  c.Counters.faults <- c.Counters.faults + 1;
  if double then c.Counters.double_faults <- c.Counters.double_faults + 1

let note_flush t = t.counters.Counters.flushes <- t.counters.Counters.flushes + 1
let note_invlpg t = t.counters.Counters.invlpgs <- t.counters.Counters.invlpgs + 1

let note_page_type t =
  t.counters.Counters.page_type_changes <- t.counters.Counters.page_type_changes + 1

let note_grant t = t.counters.Counters.grant_ops <- t.counters.Counters.grant_ops + 1
let note_evtchn t = t.counters.Counters.evtchn_ops <- t.counters.Counters.evtchn_ops + 1

let note_injector t =
  t.counters.Counters.injector_accesses <- t.counters.Counters.injector_accesses + 1

let note_console t =
  t.counters.Counters.console_lines <- t.counters.Counters.console_lines + 1

let note_vmi_scan t ~findings ~frames =
  let c = t.counters in
  c.Counters.vmi_scans <- c.Counters.vmi_scans + 1;
  c.Counters.vmi_findings <- c.Counters.vmi_findings + findings;
  c.Counters.vmi_frames <- c.Counters.vmi_frames + frames

(* --- telemetry -------------------------------------------------------- *)

type telemetry = {
  tm_hypercalls : (int * int) list;
  tm_hypercalls_failed : int;
  tm_faults : int;
  tm_double_faults : int;
  tm_flushes : int;
  tm_invlpgs : int;
  tm_page_type_changes : int;
  tm_grant_ops : int;
  tm_evtchn_ops : int;
  tm_injector_accesses : int;
  tm_vmi_scans : int;
  tm_vmi_findings : int;
  tm_vmi_frames : int;
}

let delta ~(before : Counters.snapshot) ~(after : Counters.snapshot) =
  let base n =
    Option.value ~default:0 (List.assoc_opt n before.Counters.s_hypercalls)
  in
  let tm_hypercalls =
    List.filter_map
      (fun (n, c) ->
        let d = c - base n in
        if d > 0 then Some (n, d) else None)
      after.Counters.s_hypercalls
  in
  {
    tm_hypercalls;
    tm_hypercalls_failed = after.Counters.s_failed - before.Counters.s_failed;
    tm_faults = after.Counters.s_faults - before.Counters.s_faults;
    tm_double_faults = after.Counters.s_double_faults - before.Counters.s_double_faults;
    tm_flushes = after.Counters.s_flushes - before.Counters.s_flushes;
    tm_invlpgs = after.Counters.s_invlpgs - before.Counters.s_invlpgs;
    tm_page_type_changes =
      after.Counters.s_page_type_changes - before.Counters.s_page_type_changes;
    tm_grant_ops = after.Counters.s_grant_ops - before.Counters.s_grant_ops;
    tm_evtchn_ops = after.Counters.s_evtchn_ops - before.Counters.s_evtchn_ops;
    tm_injector_accesses =
      after.Counters.s_injector_accesses - before.Counters.s_injector_accesses;
    tm_vmi_scans = after.Counters.s_vmi_scans - before.Counters.s_vmi_scans;
    tm_vmi_findings = after.Counters.s_vmi_findings - before.Counters.s_vmi_findings;
    tm_vmi_frames = after.Counters.s_vmi_frames - before.Counters.s_vmi_frames;
  }

let total_hypercalls tm = List.fold_left (fun acc (_, c) -> acc + c) 0 tm.tm_hypercalls

(* --- detection latency ------------------------------------------------ *)

let detection_latency records =
  let injection =
    List.find_opt (fun r -> match r.event with Injector_access _ -> true | _ -> false) records
  in
  match injection with
  | None -> None
  | Some inj ->
      List.find_map
        (fun r ->
          match r.event with
          | Monitor_verdict { violations; _ } when violations > 0 && r.seq > inj.seq ->
              Some (r.seq - inj.seq)
          | _ -> None)
        records

let detection_latency_ns records =
  let injection =
    List.find_opt (fun r -> match r.event with Injector_access _ -> true | _ -> false) records
  in
  match injection with
  | None -> None
  | Some inj ->
      List.find_map
        (fun r ->
          match r.event with
          | Monitor_verdict { violations; _ } when violations > 0 && r.seq > inj.seq ->
              Some (Int64.sub r.vts inj.vts)
          | _ -> None)
        records

(* --- digest ----------------------------------------------------------- *)

let digest s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

(* --- rendering -------------------------------------------------------- *)

let escalation_name = function
  | 0 -> "handled"
  | 1 -> "double_fault"
  | _ -> "triple_fault"

let pp_event ppf = function
  | Hypercall { domid; number; digest; payload } ->
      Format.fprintf ppf "hypercall d%d nr=%d digest=%016Lx %s" domid number digest
        (if payload = "" then "(nested)" else Printf.sprintf "payload=%dB" (String.length payload))
  | Guest_mem { domid; op; va; len; _ } ->
      Format.fprintf ppf "guest_mem d%d %s va=%016Lx len=%d" domid (mem_op_name op) va len
  | Guest_invlpg { domid; va } -> Format.fprintf ppf "guest_invlpg d%d va=%016Lx" domid va
  | Kernel_tick { domid } -> Format.fprintf ppf "kernel_tick d%d" domid
  | Sched_round -> Format.fprintf ppf "sched_round"
  | Net_listen { host; port } -> Format.fprintf ppf "net_listen %s:%d" host port
  | Net_cmd { to_host; port; conn_id; cmd } ->
      Format.fprintf ppf "net_cmd %s:%d#%d %S" to_host port conn_id cmd
  | Xenstore_write { caller; injected; path; value } ->
      Format.fprintf ppf "xenstore_write d%d%s %s=%S" caller
        (if injected then " (injected)" else "")
        path value
  | Hypercall_ret { domid; number; rc; failed } ->
      Format.fprintf ppf "hypercall_ret d%d nr=%d rc=%Ld%s" domid number rc
        (if failed then " (failed)" else "")
  | Fault { vector; escalation } ->
      Format.fprintf ppf "fault vector=%d %s" vector (escalation_name escalation)
  | Tlb_flush_all -> Format.fprintf ppf "tlb_flush_all"
  | Tlb_invlpg { va } -> Format.fprintf ppf "tlb_invlpg va=%016Lx" va
  | Page_type { mfn; from_type; to_type } ->
      Format.fprintf ppf "page_type mfn=%d %d->%d" mfn from_type to_type
  | Grant_op { domid; op } -> Format.fprintf ppf "grant_op d%d op=%d" domid op
  | Evtchn_op { domid; op } -> Format.fprintf ppf "evtchn_op d%d op=%d" domid op
  | Injector_access { action; addr; len } ->
      Format.fprintf ppf "injector_access action=%d addr=%016Lx len=%d" action addr len
  | Console { len; digest } -> Format.fprintf ppf "console len=%d digest=%016Lx" len digest
  | Monitor_verdict { violations; classes } ->
      Format.fprintf ppf "monitor_verdict violations=%d classes=%#x" violations classes
  | Panic { reason } -> Format.fprintf ppf "panic %S" reason
  | Vmi_scan { detector; findings; frames } ->
      Format.fprintf ppf "vmi_scan %s findings=%d frames=%d" detector findings frames
  | Backend_op { op; arg1; arg2; data } ->
      Format.fprintf ppf "backend_op op=%d arg1=%016Lx arg2=%016Lx data=%dB" op arg1 arg2
        (String.length data)
  | Provenance_edge { consumer; mfn; off; len; labels } ->
      Format.fprintf ppf "provenance_edge consumer=%d mfn=%d off=%d len=%d labels=[%s]"
        consumer mfn off len
        (String.concat "," (List.map string_of_int labels))
  | Scn_edge { section; prev; pc } ->
      Format.fprintf ppf "scn_edge section=%d %d->%d" section prev pc

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_records records =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf
           "\n  {\"seq\": %d, \"vts\": %Ld, \"event\": \"%s\", \"boundary\": %b, \"detail\": \"%s\"}"
           r.seq r.vts (event_name r.event) (is_boundary r.event)
           (json_escape (Format.asprintf "%a" pp_event r.event))))
    records;
  Buffer.add_string b "\n]";
  Buffer.contents b
