(** A unified metrics registry: counters, gauges and fixed-bucket
    histograms, with Prometheus-text and JSON renderers.

    PR 2 grew several ad-hoc observability surfaces — the always-on
    {!Trace.Counters}, per-trial telemetry deltas, the bench report's
    flat key/value list. This registry is the shared publication point
    on top of them: campaign telemetry, VMI detectors and the bench all
    register instruments here and one renderer serves them all.

    Instruments are identified by [(name, labels)]. Asking for the same
    identity twice returns the {e same} instrument (so independent
    publishers accumulate into one series); asking for it with a
    different kind raises [Invalid_argument]. Rendering sorts series by
    name then labels, so output order is deterministic regardless of
    registration order.

    Counters and histogram bucket counts are integers; gauges and
    histogram sums are floats (wall-clock seconds, ratios). Histograms
    are fixed-bucket: the bucket upper bounds are declared at creation
    and never change, and rendering is cumulative ([le]-style), exactly
    like the Prometheus exposition format. *)

type registry
type counter
type gauge
type histogram

val create : unit -> registry

(** {1 Instruments} *)

val counter :
  registry -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Find-or-create. [labels] default to []. *)

val inc : ?by:int -> counter -> unit
(** Add [by] (default 1). Raises [Invalid_argument] on negative [by]:
    counters are monotonic. *)

val counter_value : counter -> int

val gauge :
  registry -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram :
  registry ->
  ?help:string ->
  ?labels:(string * string) list ->
  buckets:float list ->
  string ->
  histogram
(** [buckets] are the finite upper bounds, strictly increasing; an
    implicit [+inf] bucket is always appended. Find-or-create: asking
    again with different [buckets] raises [Invalid_argument]. *)

val observe : histogram -> float -> unit

val histogram_count : histogram -> int
(** Total observations. *)

val histogram_sum : histogram -> float

val histogram_quantile : histogram -> float -> float
(** [histogram_quantile h q] estimates the [q]-quantile ([0 <= q <= 1])
    Prometheus-style: locate the bucket the rank falls into and
    interpolate linearly within it. Observations landing in the
    implicit [+inf] bucket clamp the estimate to the highest finite
    bound; an empty histogram yields [nan]. Raises [Invalid_argument]
    when [q] is outside [0, 1]. *)

val bucket_counts : histogram -> (float * int) list
(** Cumulative counts per upper bound, the [+inf] bucket last (rendered
    as [infinity]). [histogram_count h] equals the last count. *)

(** {1 Rendering} *)

val render_prometheus : registry -> string
(** Prometheus text exposition format: [# HELP]/[# TYPE] headers, one
    line per series, histograms as [_bucket]/[_sum]/[_count]. Series
    sorted by (name, labels); byte-deterministic for deterministic
    instrument values. *)

val render_json : registry -> string
(** The same series as a JSON object
    [{"metrics": [{"name": ..., "type": ..., "labels": {...}, ...}]}],
    in the same deterministic order. *)
