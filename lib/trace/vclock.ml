(* Deterministic virtual clock. See vclock.mli for the contract. *)

module Cost_model = struct
  type t = {
    hypercall_dispatch : int64;
    page_walk_step : int64;
    tlb_hit : int64;
    tlb_miss : int64;
    pte_install : int64;
    fault_delivery : int64;
    guest_mem_op : int64;
    xenstore_write : int64;
    netsim_cmd : int64;
    vmi_scan_frame : int64;
    kvm_ioctl : int64;
    vm_entry : int64;
    grant_map : int64;
    evtchn_send : int64;
    dm_io : int64;
  }

  (* Anchored on the bench's real-time hypercall_dispatch_ns
     distribution (the dominant mass sits in the sub-microsecond
     buckets); the other entries scale from published litmus numbers
     for the same micro-operations on commodity x86. *)
  let default =
    {
      hypercall_dispatch = 480L;
      page_walk_step = 25L;
      tlb_hit = 2L;
      tlb_miss = 30L;
      pte_install = 90L;
      fault_delivery = 350L;
      guest_mem_op = 40L;
      xenstore_write = 1200L;
      netsim_cmd = 4000L;
      vmi_scan_frame = 150L;
      kvm_ioctl = 900L;
      vm_entry = 650L;
      grant_map = 260L;
      evtchn_send = 110L;
      dm_io = 1500L;
    }

  let to_assoc m =
    [
      ("hypercall_dispatch", m.hypercall_dispatch);
      ("page_walk_step", m.page_walk_step);
      ("tlb_hit", m.tlb_hit);
      ("tlb_miss", m.tlb_miss);
      ("pte_install", m.pte_install);
      ("fault_delivery", m.fault_delivery);
      ("guest_mem_op", m.guest_mem_op);
      ("xenstore_write", m.xenstore_write);
      ("netsim_cmd", m.netsim_cmd);
      ("vmi_scan_frame", m.vmi_scan_frame);
      ("kvm_ioctl", m.kvm_ioctl);
      ("vm_entry", m.vm_entry);
      ("grant_map", m.grant_map);
      ("evtchn_send", m.evtchn_send);
      ("dm_io", m.dm_io);
    ]

  let to_string m =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s = %Ld\n" k v) (to_assoc m))

  let with_key m k v =
    match k with
    | "hypercall_dispatch" -> Some { m with hypercall_dispatch = v }
    | "page_walk_step" -> Some { m with page_walk_step = v }
    | "tlb_hit" -> Some { m with tlb_hit = v }
    | "tlb_miss" -> Some { m with tlb_miss = v }
    | "pte_install" -> Some { m with pte_install = v }
    | "fault_delivery" -> Some { m with fault_delivery = v }
    | "guest_mem_op" -> Some { m with guest_mem_op = v }
    | "xenstore_write" -> Some { m with xenstore_write = v }
    | "netsim_cmd" -> Some { m with netsim_cmd = v }
    | "vmi_scan_frame" -> Some { m with vmi_scan_frame = v }
    | "kvm_ioctl" -> Some { m with kvm_ioctl = v }
    | "vm_entry" -> Some { m with vm_entry = v }
    | "grant_map" -> Some { m with grant_map = v }
    | "evtchn_send" -> Some { m with evtchn_send = v }
    | "dm_io" -> Some { m with dm_io = v }
    | _ -> None

  let of_string ?(base = default) src =
    let err lineno msg = Error (Printf.sprintf "cost model line %d: %s" lineno msg) in
    let rec go m lineno = function
      | [] -> Ok m
      | line :: rest -> (
          let line =
            match String.index_opt line '#' with
            | Some i -> String.sub line 0 i
            | None -> line
          in
          let line = String.trim line in
          if line = "" then go m (lineno + 1) rest
          else
            match String.index_opt line '=' with
            | None -> err lineno "expected key = ns"
            | Some i -> (
                let k = String.trim (String.sub line 0 i) in
                let v =
                  String.trim (String.sub line (i + 1) (String.length line - i - 1))
                in
                match Int64.of_string_opt v with
                | None -> err lineno (Printf.sprintf "bad value %S for %s" v k)
                | Some ns when ns < 0L ->
                    err lineno (Printf.sprintf "negative cost for %s" k)
                | Some ns -> (
                    match with_key m k ns with
                    | None -> err lineno (Printf.sprintf "unknown key %S" k)
                    | Some m -> go m (lineno + 1) rest)))
    in
    go base 1 (String.split_on_char '\n' src)

  let load ?base path =
    match In_channel.with_open_text path In_channel.input_all with
    | src -> of_string ?base src
    | exception Sys_error msg -> Error msg
end

type op =
  | Hypercall_dispatch
  | Page_walk_step
  | Tlb_hit
  | Tlb_miss
  | Pte_install
  | Fault_delivery
  | Guest_mem_op
  | Xenstore_write
  | Netsim_cmd
  | Vmi_scan_frame
  | Kvm_ioctl
  | Vm_entry
  | Grant_map
  | Evtchn_send
  | Dm_io

let op_name = function
  | Hypercall_dispatch -> "hypercall_dispatch"
  | Page_walk_step -> "page_walk_step"
  | Tlb_hit -> "tlb_hit"
  | Tlb_miss -> "tlb_miss"
  | Pte_install -> "pte_install"
  | Fault_delivery -> "fault_delivery"
  | Guest_mem_op -> "guest_mem_op"
  | Xenstore_write -> "xenstore_write"
  | Netsim_cmd -> "netsim_cmd"
  | Vmi_scan_frame -> "vmi_scan_frame"
  | Kvm_ioctl -> "kvm_ioctl"
  | Vm_entry -> "vm_entry"
  | Grant_map -> "grant_map"
  | Evtchn_send -> "evtchn_send"
  | Dm_io -> "dm_io"

let cost (m : Cost_model.t) = function
  | Hypercall_dispatch -> m.Cost_model.hypercall_dispatch
  | Page_walk_step -> m.Cost_model.page_walk_step
  | Tlb_hit -> m.Cost_model.tlb_hit
  | Tlb_miss -> m.Cost_model.tlb_miss
  | Pte_install -> m.Cost_model.pte_install
  | Fault_delivery -> m.Cost_model.fault_delivery
  | Guest_mem_op -> m.Cost_model.guest_mem_op
  | Xenstore_write -> m.Cost_model.xenstore_write
  | Netsim_cmd -> m.Cost_model.netsim_cmd
  | Vmi_scan_frame -> m.Cost_model.vmi_scan_frame
  | Kvm_ioctl -> m.Cost_model.kvm_ioctl
  | Vm_entry -> m.Cost_model.vm_entry
  | Grant_map -> m.Cost_model.grant_map
  | Evtchn_send -> m.Cost_model.evtchn_send
  | Dm_io -> m.Cost_model.dm_io

type t = { mutable now : int64; mutable model : Cost_model.t; mutable attached : bool }

let create ?(model = Cost_model.default) () = { now = 0L; model; attached = true }
let now t = t.now
let set t ns = t.now <- ns
let attached t = t.attached
let set_attached t on = t.attached <- on
let model t = t.model
let set_model t m = t.model <- m
let charge t op = if t.attached then t.now <- Int64.add t.now (cost t.model op)

let charge_n t op n =
  if t.attached && n > 0 then
    t.now <- Int64.add t.now (Int64.mul (Int64.of_int n) (cost t.model op))
