(* Deterministic background-load mixes. See load_mix.mli. *)

type t = { name : string; ops_per_tick : int }

let none = { name = "none"; ops_per_tick = 0 }
let default = { name = "default"; ops_per_tick = 2 }
let heavy = { name = "heavy"; ops_per_tick = 6 }
let all = [ none; default; heavy ]
let to_string t = t.name
let of_string s = List.find_opt (fun m -> m.name = s) all
let ops_per_tick t = t.ops_per_tick

(* splitmix64: the per-domain stream generator. Chosen because one
   int64 of state is trivial to re-seed on create/fork/reset, which is
   what keeps pooled testbeds and replays byte-identical to fresh
   boots. *)

type stream = { mutable s : int64 }

let seed_for_domain domid =
  Int64.mul (Int64.of_int (domid + 1)) 0x9E3779B97F4A7C15L

let stream ~seed = { s = seed }

let next st =
  st.s <- Int64.add st.s 0x9E3779B97F4A7C15L;
  let z = st.s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)
