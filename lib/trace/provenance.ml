(* Byte-granular provenance: a sparse shadow map over physical memory
   tagging every byte with the origin label of its last writer, plus
   the causal edges created whenever a consumer (page walker, PTE
   validator, IDT gate reader, VMCS check, monitor scan) interprets
   tainted bytes. See provenance.mli for the contract. *)

let page_size = 4096

(* --- labels ------------------------------------------------------------ *)

type origin =
  | Baseline
  | Injector_action of int
  | Hypercall_arg of int
  | Guest_write of int
  | Backend_write of int
  | Overflow
  | Device_model of int

(* Stable small code for the coverage map's provenance axis: the origin
   {e constructor}, not its parameter — the axis covers "which kind of
   producer reached which consumer", not individual labels. *)
let origin_kind = function
  | Baseline -> 0
  | Injector_action _ -> 1
  | Hypercall_arg _ -> 2
  | Guest_write _ -> 3
  | Backend_write _ -> 4
  | Overflow -> 5
  | Device_model _ -> 6

let origin_to_string = function
  | Baseline -> "baseline"
  | Injector_action n -> Printf.sprintf "injector#%d" n
  | Hypercall_arg nr -> Printf.sprintf "hypercall:%d" nr
  | Guest_write domid -> Printf.sprintf "guest:d%d" domid
  | Backend_write id -> Printf.sprintf "backend:%d" id
  | Overflow -> "overflow"
  | Device_model 0 -> "device-model"
  | Device_model n -> Printf.sprintf "device-model(injector#%d)" n

type consumer =
  | Pt_walk
  | Page_type_check
  | Idt_gate
  | Monitor_scan
  | M2p_check
  | Vmcs_check
  | Ept_walk
  | Vmi_view
  | Gnt_check
  | Vdso_exec

let consumer_code = function
  | Pt_walk -> 0
  | Page_type_check -> 1
  | Idt_gate -> 2
  | Monitor_scan -> 3
  | M2p_check -> 4
  | Vmcs_check -> 5
  | Ept_walk -> 6
  | Vmi_view -> 7
  | Gnt_check -> 8
  | Vdso_exec -> 9

let consumer_name = function
  | Pt_walk -> "pt_walk"
  | Page_type_check -> "page_type_check"
  | Idt_gate -> "idt_gate"
  | Monitor_scan -> "monitor_scan"
  | M2p_check -> "m2p_check"
  | Vmcs_check -> "vmcs_check"
  | Ept_walk -> "ept_walk"
  | Vmi_view -> "vmi_view"
  | Gnt_check -> "gnt_check"
  | Vdso_exec -> "vdso_exec"

let all_consumers =
  [
    Pt_walk; Page_type_check; Idt_gate; Monitor_scan; M2p_check; Vmcs_check; Ept_walk; Vmi_view;
    Gnt_check; Vdso_exec;
  ]

(* --- the shadow map ----------------------------------------------------- *)

type edge = {
  e_seq : int;
  e_vts : int64;  (* virtual ns when the read happened (0 when no trace) *)
  e_consumer : consumer;
  e_mfn : int;
  e_off : int;
  e_len : int;
  e_labels : int list;  (* distinct nonzero label ids, ascending *)
}

type label_info = {
  li_origin : origin;
  li_seq : int;  (* trace seq when the label was first used *)
  li_vts : int64;  (* virtual ns when the label was first used *)
  mutable li_bytes : int;  (* bytes currently carrying this label *)
  mutable li_read : bool;  (* some consumer interpreted one of them *)
}

(* Label id 0 is the implicit Baseline everywhere (never stored in a
   label_info slot); 1..254 are interned origins in first-use order;
   255 is the saturation label every origin beyond the 254th maps to. *)
let max_labels = 255

type baseline = {
  b_shadow : (int, Bytes.t) Hashtbl.t;
  b_labels : (origin * int * int64 * int * bool) list;  (* in id order, from 1 *)
  b_tainted : int;
}

type t = {
  mutable tr : Trace.t option;
  shadow : (int, Bytes.t) Hashtbl.t;  (* mfn -> one label byte per data byte *)
  mutable labels : label_info list;  (* newest first; id = position from the end *)
  mutable n_labels : int;
  intern : (origin, int) Hashtbl.t;
  mutable current : int;  (* label applied by in-flight writes; 0 = none *)
  mutable edges_rev : edge list;
  mutable n_edges : int;
  mutable tainted : int;  (* total bytes with a nonzero label *)
  mutable base : baseline option;
}

let create ?tr () =
  {
    tr;
    shadow = Hashtbl.create 61;
    labels = [];
    n_labels = 0;
    intern = Hashtbl.create 61;
    current = 0;
    edges_rev = [];
    n_edges = 0;
    tainted = 0;
    base = None;
  }

let set_trace t tr = t.tr <- Some tr

let label_info t id =
  (* labels is newest-first: id [n_labels] is the head *)
  List.nth t.labels (t.n_labels - id)

let origin_of_label t id = if id = 0 then Baseline else (label_info t id).li_origin

let intern t origin =
  match Hashtbl.find_opt t.intern origin with
  | Some id -> id
  | None ->
      let seq = match t.tr with Some tr -> Trace.seq tr | None -> 0 in
      let vts = match t.tr with Some tr -> Trace.vts tr | None -> 0L in
      if t.n_labels >= max_labels - 1 then begin
        (* saturated: everything else shares the overflow label *)
        (match Hashtbl.find_opt t.intern Overflow with
        | Some id -> Hashtbl.replace t.intern origin id
        | None ->
            t.labels <-
              { li_origin = Overflow; li_seq = seq; li_vts = vts; li_bytes = 0; li_read = false }
              :: t.labels;
            t.n_labels <- t.n_labels + 1;
            Hashtbl.replace t.intern Overflow t.n_labels;
            Hashtbl.replace t.intern origin t.n_labels);
        Hashtbl.find t.intern origin
      end
      else begin
        t.labels <-
          { li_origin = origin; li_seq = seq; li_vts = vts; li_bytes = 0; li_read = false }
          :: t.labels;
        t.n_labels <- t.n_labels + 1;
        Hashtbl.replace t.intern origin t.n_labels;
        t.n_labels
      end

let with_origin t origin f =
  let saved = t.current in
  t.current <- intern t origin;
  Fun.protect ~finally:(fun () -> t.current <- saved) f

let current_origin t = if t.current = 0 then None else Some (origin_of_label t t.current)

let taint t ~mfn ~off ~len =
  let lab = t.current in
  let row =
    match Hashtbl.find_opt t.shadow mfn with
    | Some r -> Some r
    | None ->
        if lab = 0 then None
        else begin
          let r = Bytes.make page_size '\000' in
          Hashtbl.add t.shadow mfn r;
          Some r
        end
  in
  match row with
  | None -> ()
  | Some row ->
      let off = max 0 off in
      let len = min len (page_size - off) in
      let c = Char.chr lab in
      for i = off to off + len - 1 do
        let old = Char.code (Bytes.get row i) in
        if old <> lab then begin
          if old <> 0 then begin
            let o = label_info t old in
            o.li_bytes <- o.li_bytes - 1;
            t.tainted <- t.tainted - 1
          end;
          if lab <> 0 then begin
            let n = label_info t lab in
            n.li_bytes <- n.li_bytes + 1;
            t.tainted <- t.tainted + 1
          end;
          Bytes.set row i c
        end
      done

let clear_frame t mfn =
  match Hashtbl.find_opt t.shadow mfn with
  | None -> ()
  | Some row ->
      Bytes.iter
        (fun c ->
          let l = Char.code c in
          if l <> 0 then begin
            let o = label_info t l in
            o.li_bytes <- o.li_bytes - 1;
            t.tainted <- t.tainted - 1
          end)
        row;
      Hashtbl.remove t.shadow mfn

let observe t ~consumer ~mfn ~off ~len =
  match Hashtbl.find_opt t.shadow mfn with
  | None -> ()
  | Some row -> (
      let off = max 0 off in
      let len = min len (page_size - off) in
      let seen = ref [] in
      for i = off to off + len - 1 do
        let l = Char.code (Bytes.get row i) in
        if l <> 0 && not (List.mem l !seen) then seen := l :: !seen
      done;
      match List.sort_uniq compare !seen with
      | [] -> ()
      | labels ->
          List.iter (fun l -> (label_info t l).li_read <- true) labels;
          let seq = match t.tr with Some tr -> Trace.seq tr | None -> 0 in
          let vts = match t.tr with Some tr -> Trace.vts tr | None -> 0L in
          t.edges_rev <-
            {
              e_seq = seq;
              e_vts = vts;
              e_consumer = consumer;
              e_mfn = mfn;
              e_off = off;
              e_len = len;
              e_labels = labels;
            }
            :: t.edges_rev;
          t.n_edges <- t.n_edges + 1;
          (match t.tr with
          | Some tr -> (
              (* coverage feed is not gated on the ring: replay re-drives
                 these consumers whether or not it re-records *)
              (match Trace.coverage tr with
              | Some cov ->
                  List.iter
                    (fun l ->
                      Coverage.note_prov cov ~consumer:(consumer_code consumer)
                        ~origin_kind:(origin_kind (origin_of_label t l)))
                    labels
              | None -> ());
              if Trace.recording tr then
                Trace.emit tr
                  (Trace.Provenance_edge
                     { consumer = consumer_code consumer; mfn; off; len; labels }))
          | None -> ()))

(* --- checkpoint / reset ------------------------------------------------- *)

let capture_baseline t =
  let b_shadow = Hashtbl.create (max 16 (Hashtbl.length t.shadow)) in
  Hashtbl.iter (fun mfn row -> Hashtbl.replace b_shadow mfn (Bytes.copy row)) t.shadow;
  let b_labels =
    List.rev_map (fun li -> (li.li_origin, li.li_seq, li.li_vts, li.li_bytes, li.li_read)) t.labels
  in
  t.base <- Some { b_shadow; b_labels; b_tainted = t.tainted }

let reset_to_baseline t =
  t.current <- 0;
  t.edges_rev <- [];
  t.n_edges <- 0;
  Hashtbl.reset t.shadow;
  match t.base with
  | None ->
      (* provenance attached after the machine baseline was captured:
         the pre-trial state is simply "nothing tainted" *)
      t.labels <- [];
      t.n_labels <- 0;
      Hashtbl.reset t.intern;
      t.tainted <- 0
  | Some b ->
      Hashtbl.iter (fun mfn row -> Hashtbl.replace t.shadow mfn (Bytes.copy row)) b.b_shadow;
      t.labels <- [];
      t.n_labels <- 0;
      Hashtbl.reset t.intern;
      List.iter
        (fun (origin, li_seq, li_vts, li_bytes, li_read) ->
          t.labels <- { li_origin = origin; li_seq; li_vts; li_bytes; li_read } :: t.labels;
          t.n_labels <- t.n_labels + 1;
          Hashtbl.replace t.intern origin t.n_labels)
        b.b_labels;
      t.tainted <- b.b_tainted

(* --- queries ------------------------------------------------------------ *)

let tainted_bytes t = t.tainted
let edge_count t = t.n_edges
let edges t = List.rev t.edges_rev

let label_seq t id = if id = 0 then 0 else (label_info t id).li_seq
let label_vts t id = if id = 0 then 0L else (label_info t id).li_vts

let labels t =
  List.rev (List.mapi (fun i li -> (t.n_labels - i, li.li_origin, li.li_bytes, li.li_read)) t.labels)

let origins_for t pred =
  let ids =
    List.fold_left
      (fun acc e -> if pred e.e_consumer then List.rev_append e.e_labels acc else acc)
      [] t.edges_rev
  in
  List.sort_uniq compare (List.map (origin_of_label t) ids)

let origins_read t = origins_for t (fun _ -> true)

let silent t =
  List.filter_map
    (fun (_, origin, bytes, read) -> if bytes > 0 && not read then Some (origin, bytes) else None)
    (labels t)

(* --- canonical graph export -------------------------------------------- *)

(* The canonical graph is seq-free: replay re-drives the boundary
   stream on a fresh machine, which reproduces the same writes and the
   same reads but at different ring positions and (for scans) with a
   different repetition count. Distinct (consumer, location, origin
   set) tuples are what determinism guarantees, so that is what the
   export contains — byte for byte. *)

type gedge = { g_consumer : string; g_mfn : int; g_off : int; g_len : int; g_origins : string list }

let graph t =
  let render e =
    {
      g_consumer = consumer_name e.e_consumer;
      g_mfn = e.e_mfn;
      g_off = e.e_off;
      g_len = e.e_len;
      g_origins = List.map (fun id -> origin_to_string (origin_of_label t id)) e.e_labels;
    }
  in
  List.sort_uniq compare (List.rev_map render t.edges_rev)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"nodes\": [";
  List.iteri
    (fun i (_, origin, bytes, read) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf "\n    {\"origin\": \"%s\", \"bytes\": %d, \"read\": %b}"
           (json_escape (origin_to_string origin)) bytes read))
    (labels t);
  Buffer.add_string b "\n  ],\n  \"edges\": [";
  List.iteri
    (fun i g ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf "\n    {\"consumer\": \"%s\", \"mfn\": %d, \"off\": %d, \"len\": %d, \"origins\": [%s]}"
           g.g_consumer g.g_mfn g.g_off g.g_len
           (String.concat ", " (List.map (fun o -> Printf.sprintf "\"%s\"" (json_escape o)) g.g_origins))))
    (graph t);
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let dot_escape s = String.map (fun c -> if c = '"' then '\'' else c) s

let to_dot t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "digraph provenance {\n  rankdir=LR;\n";
  List.iter
    (fun (_, origin, bytes, read) ->
      Buffer.add_string b
        (Printf.sprintf "  \"%s\" [shape=box, label=\"%s\\n%d byte%s%s\"];\n"
           (dot_escape (origin_to_string origin))
           (dot_escape (origin_to_string origin))
           bytes
           (if bytes = 1 then "" else "s")
           (if read then "" else " (silent)")))
    (labels t);
  let g = graph t in
  let consumers =
    List.sort_uniq compare (List.map (fun e -> e.g_consumer) g)
  in
  List.iter
    (fun c -> Buffer.add_string b (Printf.sprintf "  \"%s\" [shape=ellipse];\n" c))
    consumers;
  (* one arrow per (origin, consumer) pair, weighted by site count *)
  let pairs = Hashtbl.create 16 in
  List.iter
    (fun e ->
      List.iter
        (fun o ->
          let k = (o, e.g_consumer) in
          Hashtbl.replace pairs k (1 + Option.value ~default:0 (Hashtbl.find_opt pairs k)))
        e.g_origins)
    g;
  let arrows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) pairs [] in
  List.iter
    (fun ((o, c), n) ->
      Buffer.add_string b
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%d\"];\n" (dot_escape o) c n))
    (List.sort compare arrows);
  Buffer.add_string b "}\n";
  Buffer.contents b

(* --- metrics ------------------------------------------------------------ *)

let read_distance_buckets = [ 1.; 4.; 16.; 64.; 256.; 1024.; 4096. ]
let read_distance_ns_buckets = [ 100.; 1_000.; 10_000.; 100_000.; 1e6; 1e7; 1e8 ]

let publish registry t =
  let c =
    Metrics.counter registry ~help:"Causal provenance edges recorded" "provenance_edges_total"
  in
  Metrics.inc c ~by:t.n_edges;
  let g =
    Metrics.gauge registry ~help:"Bytes currently carrying a nonzero taint label"
      "provenance_tainted_bytes"
  in
  Metrics.set g (float_of_int t.tainted);
  let s =
    Metrics.gauge registry ~help:"Tainted-but-never-read origin labels (silent corruption)"
      "provenance_silent_labels"
  in
  Metrics.set s (float_of_int (List.length (silent t)));
  let h =
    Metrics.histogram registry ~help:"Trace-seq distance from taint to first interpreting read"
      ~buckets:read_distance_buckets "provenance_read_distance"
  in
  let hns =
    Metrics.histogram registry
      ~help:"Virtual-ns distance from taint to first interpreting read"
      ~buckets:read_distance_ns_buckets "provenance_read_distance_ns"
  in
  List.iter
    (fun e ->
      List.iter
        (fun id ->
          Metrics.observe h (float_of_int (max 0 (e.e_seq - label_seq t id)));
          Metrics.observe hns
            (Int64.to_float (Int64.max 0L (Int64.sub e.e_vts (label_vts t id)))))
        e.e_labels)
    (edges t)
