(** Byte-granular provenance over physical memory.

    A sparse shadow map tags every byte of every frame with an {e
    origin label}: which producer wrote it last (an injector action, a
    hypercall argument path, a guest kernel write, a backend
    device-model write — or the boot-time baseline, label 0, which is
    never stored). Consumers that {e interpret} bytes — the 4-level
    page walker, [Mm]'s PTE validation, [Idt.read_gate], the KVM
    VMCS/EPT walkers, the monitor's integrity scans — call {!observe},
    which records a causal {!edge} from the consumer back to the
    origin labels of the bytes it read (and emits a
    [Trace.Provenance_edge] record when the ring is recording).

    The map is owned by [Phys_mem]: attach one with
    [Phys_mem.set_provenance] and every byte-path write taints
    automatically under the origin installed by [with_origin]. Writes
    with no origin installed {e clear} taint (overwrite semantics).
    Detached (the default), the whole layer costs one option match per
    write — provenance-off campaigns bench within noise.

    Checkpoint/restore rides the machine baseline: [Phys_mem.
    capture_baseline]/[reset_to_baseline] forward to
    {!capture_baseline}/{!reset_to_baseline}, so the O(dirty) trial
    reset also resets taint. Labels are interned in first-use order and
    all queries sort deterministically, so a replayed boundary stream
    reproduces the {!graph} byte for byte. *)

type t

(** Who wrote a byte. *)
type origin =
  | Baseline  (** label 0: untouched since the machine baseline *)
  | Injector_action of int
      (** the [n]-th injector access of the trial (1-based, from
          [Trace.Counters.injector_accesses]) *)
  | Hypercall_arg of int  (** bytes written while dispatching hypercall [nr] *)
  | Guest_write of int  (** an ordinary guest kernel write from domain [domid] *)
  | Backend_write of int  (** a backend-private write port (KVM [host_write]) *)
  | Overflow  (** the saturation label once 254 origins are live *)
  | Device_model of int
      (** bytes radiated into guest memory by a compromised device
          model. [n] is the injector access ordinal that corrupted the
          device model (so a bystander-domain casualty still attributes
          to the injector), or 0 when the compromise came from a real
          exploit rather than the injection port. *)

val origin_kind : origin -> int
(** Stable small code for the origin {e constructor} (0–6), the
    provenance axis of {!Coverage}. *)

val origin_to_string : origin -> string
(** Deterministic rendering ("injector#1", "hypercall:2", "guest:d1",
    ...), used by the exports and the attribution tables. *)

(** Who read (interpreted) a byte. *)
type consumer =
  | Pt_walk  (** {!Paging.read_entry}: the 4-level walker + PTE decode *)
  | Page_type_check  (** [Mm] page-type validation/promotion reads *)
  | Idt_gate  (** {!Idt.read_gate} (exception delivery, VMI audits) *)
  | Monitor_scan  (** [Monitor]'s writable-PT exposure scan *)
  | M2p_check  (** M2P/P2M consistency checks *)
  | Vmcs_check  (** KVM VM entry / VMCS hash reads *)
  | Ept_walk  (** the KVM EPT graph walk *)
  | Vmi_view  (** out-of-band VMI view reconstruction *)
  | Gnt_check  (** grant-table wire-entry interpretation ([Grant_table.map_memory]) *)
  | Vdso_exec  (** guest vDSO code page read at tick (backdoor decode) *)

val consumer_code : consumer -> int
(** Stable wire code used by [Trace.Provenance_edge]. *)

val consumer_name : consumer -> string
val all_consumers : consumer list

type edge = {
  e_seq : int;  (** ring seq when the read happened (0 when no trace) *)
  e_vts : int64;
      (** virtual timestamp (simulated ns) when the read happened (0
          when no trace is attached) *)
  e_consumer : consumer;
  e_mfn : int;
  e_off : int;
  e_len : int;
  e_labels : int list;  (** distinct nonzero label ids, ascending *)
}

(** {1 Lifecycle} *)

val create : ?tr:Trace.t -> unit -> t
(** An empty map. [tr] (also settable later with {!set_trace}) supplies
    edge seqs and the ring the [Provenance_edge] records go to. *)

val set_trace : t -> Trace.t -> unit

(** {1 Producing taint} *)

val with_origin : t -> origin -> (unit -> 'a) -> 'a
(** Run [f] with [origin] installed as the label for every {!taint} in
    its dynamic extent. Nests: the innermost origin wins (an injector
    action issued through a hypercall labels as the injector action). *)

val current_origin : t -> origin option

val taint : t -> mfn:int -> off:int -> len:int -> unit
(** Label [len] bytes at [off] in frame [mfn] with the installed
    origin. With no origin installed this {e clears} existing taint on
    the range (overwrite semantics) and is a no-op on untainted
    frames. *)

val clear_frame : t -> int -> unit
(** Drop all taint on one frame (called when a frame is scrubbed). *)

(** {1 Consuming taint} *)

val observe : t -> consumer:consumer -> mfn:int -> off:int -> len:int -> unit
(** Declare that [consumer] interpreted the byte range. If any byte is
    tainted: mark those labels read, append an {!edge}, and emit a
    [Trace.Provenance_edge] when the ring is recording. No-op (one
    hashtable probe) otherwise. *)

(** {1 Checkpoint / reset} *)

val capture_baseline : t -> unit
val reset_to_baseline : t -> unit
(** Restore the captured shadow state; without a capture, reset to
    "nothing tainted" (the usual case: provenance is attached after the
    machine baseline is taken). Always clears edges and the installed
    origin. *)

(** {1 Queries} *)

val tainted_bytes : t -> int
val edge_count : t -> int
val edges : t -> edge list
(** Oldest first. *)

val origin_of_label : t -> int -> origin
val label_seq : t -> int -> int

val label_vts : t -> int -> int64
(** Virtual timestamp at which the label was interned (first taint from
    its origin); 0 for the baseline label. *)

val labels : t -> (int * origin * int * bool) list
(** All interned labels in id order: (id, origin, live bytes, read). *)

val origins_for : t -> (consumer -> bool) -> origin list
(** Distinct origins reaching any consumer satisfying the predicate,
    sorted. *)

val origins_read : t -> origin list

val silent : t -> (origin * int) list
(** Tainted-but-never-read labels — silent corruption: bytes were
    injected but nothing interpreted them. (origin, live bytes), in
    label id order. *)

(** {1 Deterministic exports} *)

type gedge = { g_consumer : string; g_mfn : int; g_off : int; g_len : int; g_origins : string list }

val graph : t -> gedge list
(** The canonical (seq-free, deduplicated, sorted) causal graph. Replay
    of the same boundary stream reproduces it exactly. *)

val to_json : t -> string
(** Nodes (labels with byte counts and read flags) + canonical edges;
    byte-deterministic. *)

val to_dot : t -> string
(** Graphviz rendering: origin boxes (silent ones annotated) → consumer
    ellipses, one arrow per (origin, consumer) pair weighted by site
    count; byte-deterministic. *)

(** {1 Metrics} *)

val read_distance_buckets : float list

val read_distance_ns_buckets : float list
(** Bucket bounds (virtual ns) for the ns-denominated taint→read
    distance histogram. *)

val publish : Metrics.registry -> t -> unit
(** Publish edges-total, live tainted bytes, silent-label count and the
    taint→read distance histograms — both the legacy seq-denominated
    one and its virtual-ns counterpart. *)
