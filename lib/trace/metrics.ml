(* The metrics registry: find-or-create instruments keyed by
   (name, labels), rendered in deterministic (name, labels) order. *)

type hist = {
  bounds : float array;  (* finite upper bounds, strictly increasing *)
  counts : int array;  (* per-bucket (non-cumulative); length = bounds + 1 *)
  mutable h_sum : float;
  mutable h_total : int;
}

type value = Counter of int ref | Gauge of float ref | Histogram of hist

type instrument = {
  i_name : string;
  i_labels : (string * string) list;
  i_help : string;
  i_value : value;
}

type registry = { mutable items : instrument list }
type counter = int ref
type gauge = float ref
type histogram = hist

let create () = { items = [] }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

(* Registries hold tens of series, so a linear find keeps the
   representation trivial and the iteration order irrelevant (rendering
   sorts). *)
let find_or_add reg ~name ~labels ~help make =
  let labels = List.sort compare labels in
  match
    List.find_opt (fun i -> i.i_name = name && i.i_labels = labels) reg.items
  with
  | Some i -> i.i_value
  | None ->
      let v = make () in
      reg.items <- { i_name = name; i_labels = labels; i_help = help; i_value = v } :: reg.items;
      v

let wrong_kind name v =
  invalid_arg
    (Printf.sprintf "Metrics: %s already registered as a %s" name (kind_name v))

let counter reg ?(help = "") ?(labels = []) name =
  match find_or_add reg ~name ~labels ~help (fun () -> Counter (ref 0)) with
  | Counter c -> c
  | v -> wrong_kind name v

let inc ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.inc: counters are monotonic";
  c := !c + by

let counter_value c = !c

let gauge reg ?(help = "") ?(labels = []) name =
  match find_or_add reg ~name ~labels ~help (fun () -> Gauge (ref 0.)) with
  | Gauge g -> g
  | v -> wrong_kind name v

let set g v = g := v
let gauge_value g = !g

let histogram reg ?(help = "") ?(labels = []) ~buckets name =
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  if buckets = [] || not (increasing buckets) then
    invalid_arg
      (Printf.sprintf
         "Metrics.histogram: %s: buckets must be non-empty and strictly increasing" name);
  let make () =
    let bounds = Array.of_list buckets in
    Histogram
      { bounds; counts = Array.make (Array.length bounds + 1) 0; h_sum = 0.; h_total = 0 }
  in
  match find_or_add reg ~name ~labels ~help make with
  | Histogram h ->
      if h.bounds <> Array.of_list buckets then
        invalid_arg (Printf.sprintf "Metrics: histogram %s re-registered with different buckets" name);
      h
  | v -> wrong_kind name v

let observe h x =
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || x <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_sum <- h.h_sum +. x;
  h.h_total <- h.h_total + 1

let histogram_count h = h.h_total
let histogram_sum h = h.h_sum

(* Prometheus-style quantile estimation: find the bucket the rank falls
   into, interpolate linearly inside it (uniform-within-bucket
   assumption), clamp the +Inf bucket to the highest finite bound. *)
let histogram_quantile h q =
  if q < 0. || q > 1. then
    invalid_arg "Metrics.histogram_quantile: quantile must be within [0, 1]";
  if h.h_total = 0 then Float.nan
  else begin
    let rank = q *. float_of_int h.h_total in
    let n = Array.length h.bounds in
    let rec go i cum =
      if i >= n then h.bounds.(n - 1)
      else
        let cum' = cum + h.counts.(i) in
        if float_of_int cum' >= rank then begin
          let lower = if i = 0 then 0. else h.bounds.(i - 1) in
          let upper = h.bounds.(i) in
          if h.counts.(i) = 0 then upper
          else
            lower
            +. (upper -. lower)
               *. ((rank -. float_of_int cum) /. float_of_int h.counts.(i))
        end
        else go (i + 1) cum'
    in
    go 0 0
  end

let bucket_counts h =
  let acc = ref 0 in
  let finite =
    Array.to_list (Array.mapi (fun i b -> acc := !acc + h.counts.(i); (b, !acc)) h.bounds)
  in
  finite @ [ (infinity, h.h_total) ]

(* --- rendering -------------------------------------------------------- *)

let sorted reg =
  List.sort
    (fun a b ->
      match compare a.i_name b.i_name with 0 -> compare a.i_labels b.i_labels | c -> c)
    reg.items

(* %g-style float that never prints "inf" disagreement across systems *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

(* Prometheus label values escape exactly three characters: backslash,
   double quote and newline. OCaml's %S is close but wrong — it also
   escapes tabs and emits decimal escapes for other bytes, which the
   exposition-format parser rejects. *)
let prom_escape v =
  let b = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let label_str labels =
  match labels with
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) ls)
      ^ "}"

let with_le labels le =
  let le_s = if le = infinity then "+Inf" else float_str le in
  label_str (List.sort compare (("le", le_s) :: labels))

let render_prometheus reg =
  let b = Buffer.create 1024 in
  let seen_header = Hashtbl.create 8 in
  List.iter
    (fun i ->
      if not (Hashtbl.mem seen_header i.i_name) then begin
        Hashtbl.add seen_header i.i_name ();
        if i.i_help <> "" then
          Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" i.i_name i.i_help);
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" i.i_name (kind_name i.i_value))
      end;
      match i.i_value with
      | Counter c ->
          Buffer.add_string b (Printf.sprintf "%s%s %d\n" i.i_name (label_str i.i_labels) !c)
      | Gauge g ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" i.i_name (label_str i.i_labels) (float_str !g))
      | Histogram h ->
          List.iter
            (fun (le, n) ->
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" i.i_name (with_le i.i_labels le) n))
            (bucket_counts h);
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" i.i_name (label_str i.i_labels)
               (float_str h.h_sum));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" i.i_name (label_str i.i_labels) h.h_total))
    (sorted reg);
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)) labels)
  ^ "}"

let render_json reg =
  let item i =
    let common =
      Printf.sprintf "\"name\":\"%s\",\"type\":\"%s\",\"labels\":%s" (json_escape i.i_name)
        (kind_name i.i_value) (json_labels i.i_labels)
    in
    match i.i_value with
    | Counter c -> Printf.sprintf "{%s,\"value\":%d}" common !c
    | Gauge g -> Printf.sprintf "{%s,\"value\":%s}" common (float_str !g)
    | Histogram h ->
        let buckets =
          String.concat ","
            (List.map
               (fun (le, n) ->
                 Printf.sprintf "{\"le\":%s,\"count\":%d}"
                   (if le = infinity then "\"+Inf\"" else float_str le)
                   n)
               (bucket_counts h))
        in
        Printf.sprintf "{%s,\"buckets\":[%s],\"sum\":%s,\"count\":%d}" common buckets
          (float_str h.h_sum) h.h_total
  in
  "{\"metrics\":[\n  "
  ^ String.concat ",\n  " (List.map item (sorted reg))
  ^ "\n]}\n"
