(** A xentrace-style event tracer: typed records in a binary ring
    buffer, plus a set of always-on scalar counters.

    The design splits observability in two tiers:

    - {b Counters} are always on. They are plain integer increments
      (hypercalls by number, faults, TLB flushes, page-type
      transitions, ...), cheap enough to leave enabled on every
      campaign trial. {!Hv.hypercall_stats} and the per-trial telemetry
      columns are views over them.

    - The {b ring} is off by default. When enabled ({!enable}), every
      instrumentation point also serializes a typed record into a
      circular byte buffer; when the ring fills, the oldest whole
      records are evicted (xentrace keeps the newest). A disabled ring
      costs one boolean load per instrumentation point.

    Records carry a monotonically increasing sequence number plus a
    {e virtual} timestamp — the machine's deterministic {!Vclock}
    reading in simulated nanoseconds — instead of a wall-clock stamp,
    so a trace of a deterministic run is itself byte-deterministic:
    the same trial recorded twice produces bit-identical {!to_bytes}
    output, virtual timestamps included.

    {b Boundary vs. internal events.} Events subdivide into {e
    boundary} events — crossings from a script into the testbed
    (hypercalls with full argument payloads, guest memory accesses,
    kernel ticks, network commands) — and {e internal} events, the
    consequences the machine produces on its own (faults, flushes,
    page-type transitions, verdicts). A recorded boundary stream is
    sufficient to re-execute the trial ({!Trace_driver} in [ii_core]);
    internal events are pure observability. The {!enter}/{!leave} depth
    counter suppresses boundary records for nested crossings (a balloon
    hypercall issued from inside a recorded kernel tick is a
    consequence of the tick, not an input), which is what makes replay
    apply each input exactly once. *)

type t

(** {1 Events} *)

(** Guest memory access flavours, in the encoding used by
    [Guest_mem.op]. *)
type mem_op =
  | Op_read_u64
  | Op_write_u64
  | Op_read_bytes
  | Op_write_bytes
  | Op_user_read_u64
  | Op_user_write_u64
  | Op_probe_u64
      (** a page-table probe read ({!Kernel.pt_entry}): translated like
          a kernel read but never delivers a fault *)

val mem_op_code : mem_op -> int
val mem_op_of_code : int -> mem_op option
val mem_op_name : mem_op -> string

type event =
  (* boundary events (replayable inputs) *)
  | Hypercall of { domid : int; number : int; digest : int64; payload : string }
      (** [payload] is the {!Hypercall.encode_call} serialization when
          the call was recorded at top level, [""] for nested calls
          (which replay regenerates). [digest] is {!digest} of the
          payload. *)
  | Guest_mem of { domid : int; op : mem_op; va : int64; len : int; data : string }
      (** [data] carries the written bytes for write flavours, [""] for
          reads. *)
  | Guest_invlpg of { domid : int; va : int64 }
  | Kernel_tick of { domid : int }
  | Sched_round
  | Net_listen of { host : string; port : int }
  | Net_cmd of { to_host : string; port : int; conn_id : int; cmd : string }
  | Xenstore_write of { caller : int; injected : bool; path : string; value : string }
  (* internal events (observability only; replay regenerates them) *)
  | Hypercall_ret of { domid : int; number : int; rc : int64; failed : bool }
  | Fault of { vector : int; escalation : int }
      (** [escalation]: 0 handled, 1 double-fault panic, 2 triple fault *)
  | Tlb_flush_all
  | Tlb_invlpg of { va : int64 }
  | Page_type of { mfn : int; from_type : int; to_type : int }
      (** a [Page_info] type transition, as {!Page_info.ptype}
          constructor indices *)
  | Grant_op of { domid : int; op : int }
  | Evtchn_op of { domid : int; op : int }
  | Injector_access of { action : int; addr : int64; len : int }
  | Console of { len : int; digest : int64 }
  | Monitor_verdict of { violations : int; classes : int }
      (** [classes] is a bitmask of violation classes (see
          {!Monitor.class_mask}) *)
  | Panic of { reason : string }
  | Vmi_scan of { detector : string; findings : int; frames : int }
      (** one out-of-band detector scan: how many anomalies it reported
          and how many frames it read (the deterministic cost proxy).
          Internal — scans are side-effect-free, so replay never needs
          to re-run them. *)
  | Backend_op of { op : int; arg1 : int64; arg2 : int64; data : string }
      (** a backend-specific boundary crossing for substrates without
          Xen's guest-kernel instrumentation (the KVM ioctl, a VM
          entry, a fault delivery). [op] is interpreted by the backend
          that recorded it; [data] carries write payloads so replay can
          re-drive them. Boundary. *)
  | Provenance_edge of { consumer : int; mfn : int; off : int; len : int; labels : int list }
      (** a taint-aware consumer (page walker, PTE validator, IDT gate
          reader, VMCS check, monitor scan — see {!Provenance.consumer})
          interpreted bytes carrying the given origin labels. Links this
          record's seq to the producers it causally depends on.
          Internal — replay regenerates edges by re-driving the
          boundary stream. *)
  | Scn_edge of { section : int; prev : int; pc : int }
      (** one executed scenario-bytecode instruction: the
          (section, prev-pc → pc) control-flow edge, where [section] is
          0 for [exploit] and 1 for [inject] and the entry edge uses
          [prev = 0xffffff]. Only emitted while a {!Coverage} collector
          is attached. Boundary — the bytecode VM does not run during
          replay, so replay refeeds the coverage map from these
          records. *)

val is_boundary : event -> bool
(** True for the events replay applies: every boundary constructor,
    except [Hypercall] records with an empty payload. *)

val event_name : event -> string
val pp_event : Format.formatter -> event -> unit

type record = { seq : int; vts : int64; event : event }
(** [vts] is the machine's virtual time (ns) when the record was
    emitted; {!Trace_driver.replay} reproduces it byte-for-byte. *)

(** {1 Lifecycle} *)

val create : unit -> t
(** Counters armed, ring disabled. *)

val enable : ?capacity_bytes:int -> t -> unit
(** Clear the ring, size it to [capacity_bytes] (default 4 MiB) and
    start recording. Sequence numbers restart at 0. *)

val disable : t -> unit
(** Stop recording. The recorded contents stay readable. *)

val recording : t -> bool

val coverage : t -> Coverage.t option
val set_coverage : t -> Coverage.t option -> unit
(** Attach/detach a coverage collector. Detached (the default) every
    instrumented site pays one option match; attached, {!emit} also
    feeds the record-code axis (except the records only a recording
    side produces: VMI scans, the closing monitor verdict). *)

val clear : t -> unit
(** Drop the ring contents and reset [seq]/[dropped]; recording state
    and counters are unchanged. *)

(** {1 Recording} *)

val emit : t -> event -> unit
(** Append a record (no-op when the ring is disabled). Call sites on
    hot paths guard with [if Trace.recording t then ...] so the event
    payload is never even allocated while tracing is off. *)

val enter : t -> unit
val leave : t -> unit
(** Bracket the execution of a recorded boundary event, so boundary
    records for nested crossings are suppressed. *)

val top_level : t -> bool
(** No enclosing boundary event is executing. *)

val dropped : t -> int
(** Records evicted by wraparound since {!enable}/{!clear}. *)

val seq : t -> int
(** Sequence number the next record will get (= records emitted so
    far). *)

(** {1 Virtual time}

    Each trace owns the machine's {!Vclock}: instrumentation points
    charge per-operation costs against it, and {!emit} stamps its
    reading into every record. Unlike the ring, the clock advances
    whether or not recording is on (neutrality: a traced and an
    untraced trial read the same virtual time). *)

val vclock : t -> Vclock.t
(** The machine's virtual clock (checkpoint/restore goes through
    {!Vclock.now}/{!Vclock.set} on this handle). *)

val vts : t -> int64
(** [Vclock.now (vclock t)]: current virtual time in nanoseconds. *)

val charge : t -> Vclock.op -> unit
val charge_n : t -> Vclock.op -> int -> unit
(** Advance the clock by the cost model's price for an operation
    (no-ops when the clock is detached). *)

(** {1 Reading a trace} *)

val to_bytes : t -> string
(** The live records, oldest first, in the framed binary layout
    ([u32 len | u32 seq | i64 vts | u8 code | payload],
    little-endian). Two recordings of the same deterministic run are
    byte-identical. *)

val records : t -> record list
(** Decoded view of {!to_bytes}, oldest first. *)

val records_of_string : string -> record list
(** Decode a {!to_bytes} image (e.g. one held by a
    [Trace_driver.recording]). *)

val strip_vts : string -> string
(** Re-frame a {!to_bytes} image into the pre-vts v1 layout
    ([u32 len | u32 seq | u8 code | payload]): drops each frame's
    [vts] word and fixes the length prefix, leaving every other byte
    verbatim. Lets fixtures captured under v1 keep pinning the
    seq/code/payload content of current recordings. *)

val detection_latency : record list -> int option
(** Sequence distance from the first injector access to the first
    non-empty monitor verdict after it — the trace-level
    detection-latency metric (None when either end is missing). *)

val detection_latency_ns : record list -> int64 option
(** Same two endpoints as {!detection_latency}, measured on the
    virtual clock: how long (simulated ns) the injected state survived
    before a monitor saw it. *)

(** {1 Counters} *)

module Counters : sig
  type t

  (** An immutable copy, for checkpoint/restore and for computing
      per-trial deltas. *)
  type snapshot

  val snapshot : t -> snapshot
  val restore : t -> snapshot -> unit
  val hypercalls : t -> (int * int) list
  (** (hypercall number, calls), ascending by number. *)

  val hypercalls_failed : t -> int
  val faults : t -> int
  val double_faults : t -> int
  val flushes : t -> int
  val invlpgs : t -> int
  val page_type_changes : t -> int
  val grant_ops : t -> int
  val evtchn_ops : t -> int
  val injector_accesses : t -> int
  val console_lines : t -> int
  val vmi_scans : t -> int
  val vmi_findings : t -> int

  val vmi_frames : t -> int
  (** Frames read across all VMI scans — the detectors' cost in
      deterministic units. *)
end

val counters : t -> Counters.t

val note_hypercall : t -> number:int -> failed:bool -> unit
val note_fault : t -> double:bool -> unit
val note_flush : t -> unit
val note_invlpg : t -> unit
val note_page_type : t -> unit
val note_grant : t -> unit
val note_evtchn : t -> unit
val note_injector : t -> unit
val note_console : t -> unit

val note_vmi_scan : t -> findings:int -> frames:int -> unit
(** One detector scan: bumps the scan count and accumulates findings
    and frames-read. *)

(** {1 Per-trial telemetry} *)

(** The counter delta over one campaign trial. *)
type telemetry = {
  tm_hypercalls : (int * int) list;  (** by hypercall number, ascending *)
  tm_hypercalls_failed : int;
  tm_faults : int;
  tm_double_faults : int;
  tm_flushes : int;
  tm_invlpgs : int;
  tm_page_type_changes : int;
  tm_grant_ops : int;
  tm_evtchn_ops : int;
  tm_injector_accesses : int;
  tm_vmi_scans : int;
  tm_vmi_findings : int;
  tm_vmi_frames : int;
}

val delta : before:Counters.snapshot -> after:Counters.snapshot -> telemetry
val total_hypercalls : telemetry -> int

(** {1 Helpers} *)

val digest : string -> int64
(** FNV-1a (64-bit) — the argument digest attached to hypercall and
    console records. *)

val json_of_records : record list -> string
(** A JSON array of record objects (hand-rolled, stable field order). *)
