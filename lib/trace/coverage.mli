(** Deterministic, mergeable coverage maps — the feedback signal a
    coverage-guided intrusion fuzzer maximizes.

    A {e collector} ({!t}) rides on a machine's {!Trace.t} (attach with
    [Trace.set_coverage]); the instrumented sites that already exist for
    tracing feed it through the [note_*] calls. A {e map} ({!map}) is an
    immutable fixed-size bitmap snapshot of a collector: 1328 bytes
    covering five axes —

    - {b violation}: monitor violation class × affected-domain slot
      (6 × 32 = 192 bits)
    - {b provenance}: causal-edge consumer site × origin kind
      (16 × 8 = 128 bits)
    - {b port}: hypercall/ioctl number × errno outcome
      (64 × 32 = 2048 bits)
    - {b scn_edge}: scenario-bytecode prev-pc→pc edges, hashed into
      1024 slots × 8 AFL-style hit-count buckets (8192 bits)
    - {b record}: trace record codes seen on the ring (64 bits)

    Everything is modular arithmetic over fixed tables, so a map is a
    pure function of the trial's deterministic execution: sequential,
    sharded and pooled campaigns produce byte-identical maps, and
    replaying a recording's boundary stream reproduces its map exactly.
    [merge] is bitwise-or (commutative, associative, idempotent), which
    is what makes per-trial maps safe to accumulate in any order. *)

type t
(** A mutable collector (one per machine trace). *)

type map
(** An immutable snapshot. Structural equality is byte equality. *)

(** {1 Collector} *)

val create : unit -> t

val clear : t -> unit
(** Reset to empty — campaigns call this at the top of every trial so a
    trial's map is absolute (independent of worker history). *)

val note_violation : t -> cls:int -> domain:string -> unit
(** [cls] is {!Monitor.class_index}; [domain] the affected domain name
    (["host"] for host-level rows), hashed into 32 slots. *)

val note_prov : t -> consumer:int -> origin_kind:int -> unit
(** [consumer] is {!Provenance.consumer_code}; [origin_kind] a stable
    small code for the origin constructor (see {!Provenance}). *)

val note_port : t -> nr:int -> outcome:int -> unit
(** A hypercall or backend-ioctl completion: [nr] the call number,
    [outcome] 0 for success or the positive {!Errno.to_int} code. *)

val note_scn_edge : t -> section:int -> prev:int -> pc:int -> unit
(** One executed scenario-bytecode instruction: the (section, prev-pc,
    pc) edge, counted; counts bucketize AFL-style at snapshot time. *)

val note_record : t -> int -> unit
(** A trace record code appended to the ring. {!Trace.emit} feeds this
    automatically for every code a replay regenerates. *)

val snapshot : t -> map

(** {1 Maps} *)

val empty : map
val size_bits : int

val merge : map -> map -> map
(** Bitwise or: commutative, associative, idempotent. *)

val diff : map -> map -> map
(** [diff a b]: bits set in [a] but not in [b];
    [merge b (diff a b) = merge a b]. *)

val novelty : map -> against:map -> int
(** Bits this map adds over [against]: [popcount (diff m against)]. *)

val popcount : map -> int
val is_empty : map -> bool
val equal : map -> map -> bool

val hash : map -> int64
(** FNV-1a 64 over the map bytes; stable across processes. *)

val region_bits : map -> (string * int) list
(** Per-axis popcount, in layout order:
    [violation; provenance; port; scn_edge; record]. *)

(** {1 Deterministic renderers} *)

val to_hex : map -> string
val of_hex : string -> (map, string) result

val to_json : map -> string
(** [{"bits":…,"hash":"…","regions":{…},"map":"<hex>"}] —
    byte-deterministic. *)

val of_json_map : string -> (map, string) result
(** Recover a map from any JSON document containing a ["map":"<hex>"]
    field (the first occurrence wins — pass a single-map document). *)

val publish : ?labels:(string * string) list -> Metrics.registry -> map -> unit
(** Gauges [coverage_bits_total] and [coverage_bits{region=…}], rendered
    by {!Metrics.render_prometheus} like every other series. *)

(** {1 Slot helpers (exposed for tests)} *)

val domain_slot : string -> int
val scn_slot : section:int -> prev:int -> pc:int -> int
val count_bucket : int -> int
