(* Deterministic coverage maps over the trial axes the fuzzer will
   later maximize. See coverage.mli for the layout contract; the
   numbers below are the single source of truth for it. *)

(* --- layout ------------------------------------------------------------ *)

let viol_classes = 6
let viol_domain_slots = 32
let prov_consumers = 16
let prov_kinds = 8
let port_nrs = 64
let port_outcomes = 32
let scn_slots = 1024
let scn_buckets = 8
let record_codes = 64

let viol_bits = viol_classes * viol_domain_slots (* 192 *)
let prov_bits = prov_consumers * prov_kinds (* 128 *)
let port_bits = port_nrs * port_outcomes (* 2048 *)
let scn_bits = scn_slots * scn_buckets (* 8192 *)

let viol_off = 0
let prov_off = viol_off + (viol_bits / 8)
let port_off = prov_off + (prov_bits / 8)
let scn_off = port_off + (port_bits / 8)
let record_off = scn_off + (scn_bits / 8)
let size_bytes = record_off + (record_codes / 8) (* 1328 *)
let size_bits = size_bytes * 8

type map = Bytes.t

type t = {
  bits : Bytes.t;  (* every axis except scn_edge sets bits directly *)
  scn : int array;  (* raw per-slot hit counts, bucketized at snapshot *)
}

let create () = { bits = Bytes.make size_bytes '\000'; scn = Array.make scn_slots 0 }

let clear t =
  Bytes.fill t.bits 0 size_bytes '\000';
  Array.fill t.scn 0 scn_slots 0

let set_bit b i =
  let byte = i lsr 3 and mask = 1 lsl (i land 7) in
  Bytes.set_uint8 b byte (Bytes.get_uint8 b byte lor mask)

(* --- hashing ----------------------------------------------------------- *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_byte h c = Int64.mul (Int64.logxor h (Int64.of_int (c land 0xff))) fnv_prime

let fnv_int h v =
  let h = ref h in
  for i = 0 to 7 do
    h := fnv_byte !h ((v lsr (i * 8)) land 0xff)
  done;
  !h

let hash m =
  let h = ref fnv_offset in
  Bytes.iter (fun c -> h := fnv_byte !h (Char.code c)) m;
  !h

let domain_slot name =
  let h = ref fnv_offset in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) name;
  Int64.to_int (Int64.logand !h 31L)

let scn_slot ~section ~prev ~pc =
  let h = fnv_int (fnv_int (fnv_int fnv_offset section) prev) pc in
  Int64.to_int (Int64.logand h (Int64.of_int (scn_slots - 1)))

(* AFL-style hit-count buckets: 1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+ *)
let count_bucket c =
  if c <= 1 then 0
  else if c = 2 then 1
  else if c = 3 then 2
  else if c < 8 then 3
  else if c < 16 then 4
  else if c < 32 then 5
  else if c < 128 then 6
  else 7

(* --- producers --------------------------------------------------------- *)

let note_violation t ~cls ~domain =
  let cls = ((cls mod viol_classes) + viol_classes) mod viol_classes in
  set_bit t.bits ((viol_off * 8) + (cls * viol_domain_slots) + domain_slot domain)

let note_prov t ~consumer ~origin_kind =
  set_bit t.bits
    ((prov_off * 8) + ((consumer land (prov_consumers - 1)) * prov_kinds)
    + (origin_kind land (prov_kinds - 1)))

let note_port t ~nr ~outcome =
  set_bit t.bits
    ((port_off * 8) + ((nr land (port_nrs - 1)) * port_outcomes)
    + (outcome land (port_outcomes - 1)))

let note_scn_edge t ~section ~prev ~pc =
  let s = scn_slot ~section ~prev ~pc in
  t.scn.(s) <- t.scn.(s) + 1

let note_record t code = set_bit t.bits ((record_off * 8) + (code land (record_codes - 1)))

let snapshot t =
  let m = Bytes.copy t.bits in
  Array.iteri
    (fun i c -> if c > 0 then set_bit m ((scn_off * 8) + (i * scn_buckets) + count_bucket c))
    t.scn;
  m

(* --- maps -------------------------------------------------------------- *)

let empty = Bytes.make size_bytes '\000'

let check_size name m =
  if Bytes.length m <> size_bytes then
    invalid_arg (Printf.sprintf "Coverage.%s: map is %d bytes, want %d" name (Bytes.length m) size_bytes)

let map2 name f a b =
  check_size name a;
  check_size name b;
  Bytes.init size_bytes (fun i ->
      Char.chr (f (Bytes.get_uint8 a i) (Bytes.get_uint8 b i) land 0xff))

let merge a b = map2 "merge" ( lor ) a b
let diff a b = map2 "diff" (fun x y -> x land lnot y) a b

let popcount_byte =
  lazy
    (Array.init 256 (fun v ->
         let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
         go v 0))

let popcount m =
  let tbl = Lazy.force popcount_byte in
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := !acc + tbl.(Char.code c)) m;
  !acc

let novelty m ~against = popcount (diff m against)
let is_empty m = Bytes.for_all (fun c -> c = '\000') m
let equal = Bytes.equal

let regions =
  [
    ("violation", viol_off, viol_bits / 8);
    ("provenance", prov_off, prov_bits / 8);
    ("port", port_off, port_bits / 8);
    ("scn_edge", scn_off, scn_bits / 8);
    ("record", record_off, record_codes / 8);
  ]

let region_bits m =
  let tbl = Lazy.force popcount_byte in
  List.map
    (fun (name, off, len) ->
      let acc = ref 0 in
      for i = off to off + len - 1 do
        acc := !acc + tbl.(Bytes.get_uint8 m i)
      done;
      (name, !acc))
    regions

(* --- renderers --------------------------------------------------------- *)

let to_hex m =
  String.init (2 * Bytes.length m) (fun i ->
      let v = Bytes.get_uint8 m (i / 2) in
      "0123456789abcdef".[if i mod 2 = 0 then v lsr 4 else v land 0xf])

let of_hex s =
  if String.length s <> 2 * size_bytes then
    Error (Printf.sprintf "coverage hex is %d chars, want %d" (String.length s) (2 * size_bytes))
  else
    let nib c =
      match c with
      | '0' .. '9' -> Ok (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Ok (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Ok (Char.code c - Char.code 'A' + 10)
      | c -> Error (Printf.sprintf "bad hex char %C" c)
    in
    let m = Bytes.make size_bytes '\000' in
    let err = ref None in
    for i = 0 to size_bytes - 1 do
      match (nib s.[2 * i], nib s.[(2 * i) + 1]) with
      | Ok hi, Ok lo -> Bytes.set_uint8 m i ((hi lsl 4) lor lo)
      | Error e, _ | _, Error e -> if !err = None then err := Some e
    done;
    match !err with Some e -> Error e | None -> Ok m

let to_json m =
  Printf.sprintf "{\"bits\":%d,\"hash\":\"%016Lx\",\"regions\":{%s},\"map\":\"%s\"}"
    (popcount m) (hash m)
    (String.concat "," (List.map (fun (n, b) -> Printf.sprintf "\"%s\":%d" n b) (region_bits m)))
    (to_hex m)

let of_json_map s =
  let key = "\"map\":\"" in
  let rec find i =
    if i + String.length key > String.length s then Error "no \"map\" field"
    else if String.sub s i (String.length key) = key then begin
      let start = i + String.length key in
      match String.index_from_opt s start '"' with
      | None -> Error "unterminated \"map\" field"
      | Some stop -> of_hex (String.sub s start (stop - start))
    end
    else find (i + 1)
  in
  find 0

let publish ?(labels = []) reg m =
  Metrics.set
    (Metrics.gauge reg ~help:"Coverage bits set across all axes" ~labels "coverage_bits_total")
    (float_of_int (popcount m));
  List.iter
    (fun (region, bits) ->
      Metrics.set
        (Metrics.gauge reg ~help:"Coverage bits set per axis"
           ~labels:(labels @ [ ("region", region) ])
           "coverage_bits")
        (float_of_int bits))
    (region_bits m)
