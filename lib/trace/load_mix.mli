(** Deterministic background workload mixes for multi-domain testbeds.

    A mix names how many background operations every guest domain
    performs per scheduler round ({!ops_per_tick}); {e which} operations
    is decided by a per-domain splitmix64 {!stream} seeded from the
    domain id. Because the streams are re-seeded on every testbed
    create/fork/reset and drawn only inside the (replayed) scheduler
    round, a loaded testbed stays deterministic: pooled ≡ fresh and
    record/replay reproduce the same (vts, event) stream byte for byte.

    The ops themselves run through the ordinary instrumented guest
    paths (hypercalls, guest memory accesses), so load is charged on
    the virtual clock — "N hypercalls per virtual second" is a
    reproducible number, not a host-speed artifact. *)

type t

val none : t
(** Zero background ops: the historical single-attacker behaviour. *)

val default : t
(** 2 ops per domain per scheduler round. *)

val heavy : t
(** 6 ops per domain per scheduler round. *)

val all : t list

val to_string : t -> string
(** "none", "default", "heavy" — the [--load] argument vocabulary. *)

val of_string : string -> t option
val ops_per_tick : t -> int

(** {1 Per-domain streams} *)

type stream

val seed_for_domain : int -> int64
(** The canonical seed for a domain's stream (a function of the domain
    id only, so every testbed shape agrees). *)

val stream : seed:int64 -> stream
val next : stream -> int64
(** Advance the splitmix64 state and return the next 64-bit draw. *)
