(** A deterministic virtual clock: simulated time for a machine whose
    real execution takes however long the host takes.

    The clock is a monotonic nanosecond counter advanced by a {e cost
    model}: every modelled operation (a hypercall dispatch, one level
    of a page walk, a TLB hit, ...) charges a fixed number of virtual
    nanoseconds. Because the charge sites sit on the same deterministic
    execution paths the tracer instruments, two runs of the same trial
    read identical virtual timestamps — and a replayed boundary stream
    reproduces them byte-for-byte ({!Trace_driver.replay}).

    One clock is owned by each machine (embedded in its {!Trace.t}) and
    travels with machine state: checkpointed, restored, and inherited
    across testbed forks, so pooled campaigns stay byte-identical to
    fresh boots.

    The clock can be {e detached}: charges become no-ops and {!now}
    stays frozen. Detaching never changes machine behaviour — result
    rows differ only in their virtual-time column — which is what the
    vclock-off ≡ vclock-on neutrality tests pin. *)

(** {1 Cost model} *)

module Cost_model : sig
  (** Virtual nanoseconds charged per operation. The defaults are
      calibrated against the real-time measurements the bench takes
      ([hypercall_dispatch_ns]); see ARCHITECTURE.md "Virtual time"
      for the table. *)
  type t = {
    hypercall_dispatch : int64;  (** one hypercall dispatch (entry to return) *)
    page_walk_step : int64;  (** one level of a page-table walk *)
    tlb_hit : int64;  (** translation served from the software TLB *)
    tlb_miss : int64;  (** TLB lookup that fell through to a walk *)
    pte_install : int64;  (** one validated PTE write ([Mm.apply_one]) *)
    fault_delivery : int64;  (** delivering one exception to a guest *)
    guest_mem_op : int64;  (** one guest virtual-memory access *)
    xenstore_write : int64;  (** one xenstore write transaction *)
    netsim_cmd : int64;  (** one simulated network command round-trip *)
    vmi_scan_frame : int64;
        (** one frame read by a VMI detector scan. Accrued on the
            scanner's own meter, never on the machine clock: scans are
            side-effect-free and replay does not re-run them. *)
    kvm_ioctl : int64;  (** one KVM injector ioctl *)
    vm_entry : int64;  (** one KVM VM entry (or in-guest fault delivery) *)
    grant_map : int64;  (** one cross-domain grant map/unmap *)
    evtchn_send : int64;  (** one event-channel notification *)
    dm_io : int64;  (** one device-model I/O request (FDC command round) *)
  }

  val default : t

  val to_assoc : t -> (string * int64) list
  (** [(key, ns)] pairs in a stable order; the keys are the field
      names above and double as the config-file and bench-echo keys. *)

  val to_string : t -> string
  (** Render as the config-file syntax {!of_string} accepts. *)

  val of_string : ?base:t -> string -> (t, string) result
  (** Parse a cost-model config: one [key = ns] per line, [#] comments
      and blank lines ignored. Unknown keys and non-integer or negative
      values are errors (never raises). Missing keys keep the value
      from [base] (default: {!default}). *)

  val load : ?base:t -> string -> (t, string) result
  (** {!of_string} over a file's contents; I/O failures are [Error]. *)
end

(** {1 Operations} *)

(** The modelled operations, one per {!Cost_model.t} entry. *)
type op =
  | Hypercall_dispatch
  | Page_walk_step
  | Tlb_hit
  | Tlb_miss
  | Pte_install
  | Fault_delivery
  | Guest_mem_op
  | Xenstore_write
  | Netsim_cmd
  | Vmi_scan_frame
  | Kvm_ioctl
  | Vm_entry
  | Grant_map
  | Evtchn_send
  | Dm_io

val op_name : op -> string
val cost : Cost_model.t -> op -> int64

(** {1 The clock} *)

type t

val create : ?model:Cost_model.t -> unit -> t
(** At 0 ns, attached, with [model] (default {!Cost_model.default}). *)

val now : t -> int64
(** Current virtual time in nanoseconds. *)

val set : t -> int64 -> unit
(** Restore the counter (checkpoint/restore, fork inheritance). *)

val attached : t -> bool

val set_attached : t -> bool -> unit
(** Detached clocks ignore {!charge}; {!now} stays frozen. *)

val model : t -> Cost_model.t
val set_model : t -> Cost_model.t -> unit

val charge : t -> op -> unit
(** Advance by the model's cost for [op] (no-op when detached). *)

val charge_n : t -> op -> int -> unit
(** Advance by [n] times the cost for [op]. *)
