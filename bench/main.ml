(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (printing the same rows the paper reports) and
   times the code paths behind each with Bechamel.

   Usage:
     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe table1     -- one artefact (table1..3, fig1..4)
     dune exec bench/main.exe bench      -- only the Bechamel timings
*)

module All = Ii_exploits.All_exploits

let hr title =
  Printf.printf "\n==================== %s ====================\n\n" title

(* --- artefact regeneration -------------------------------------------- *)

let table1 () =
  hr "TABLE I (abusive functionality study, §IV-D)";
  print_endline (Ii_advisory.Corpus.table1 ());
  Printf.printf "\ncorpus: %d CVEs, %d classifications; classifier accuracy %.1f%%\n"
    Ii_advisory.Corpus.size Ii_advisory.Corpus.classifications
    (100. *. Ii_advisory.Classify.accuracy ())

let table2 () =
  hr "TABLE II (use case -> abusive functionality, §VI-A)";
  print_endline (Campaign.table2 All.use_cases)

let injection_rows =
  lazy (Campaign.run_matrix All.use_cases ~versions:Version.all ~modes:[ Campaign.Injection ])

let table3 () =
  hr "TABLE III (injection campaign, §VII/§VIII)";
  print_endline (Campaign.table3 (Lazy.force injection_rows));
  print_endline "\nPaper: all eight Err.State cells check; 4.13 shields XSA-212-priv and";
  print_endline "XSA-182-test (different security level after the post-XSA-213 hardening).";
  print_newline ();
  print_endline (Campaign.telemetry_table (Lazy.force injection_rows))

let fig1 () =
  hr "FIG 1 (chain of dependability threats + extended AVI)";
  let final, trace = Avi.run Avi.Correct Avi.venom_scenario in
  List.iter (fun s -> Printf.printf "  -> %s\n" (Avi.state_to_string s)) trace;
  Printf.printf "final: %s\n" (Avi.state_to_string final);
  let _, handled_trace =
    Avi.run Avi.Correct
      [
        Avi.Introduce_vulnerability "XSA-133: FDC accepts over-long input buffers";
        Avi.Attack { exploit = "crafted kernel module floods the FDC FIFO"; activates = true };
        Avi.Error_handling "device-model handler validation";
      ]
  in
  print_endline "with error handling deployed:";
  List.iter (fun s -> Printf.printf "  -> %s\n" (Avi.state_to_string s)) handled_trace

let fig2 () =
  hr "FIG 2 (methodology key components, end to end)";
  let tb = Testbed.create Version.V4_8 in
  let uc = Option.get (All.find "XSA-182-test") in
  let trace = Pipeline.run tb ~im:uc.Campaign.im ~inject:uc.Campaign.run_injection in
  Format.printf "%a@." Pipeline.pp trace

let fig3 () =
  hr "FIG 3 (intrusion internal impact vs abusive-functionality abstraction)";
  let m = Weird_machine.xsa_example in
  let attack = [ "a"; "b"; "crafted-hypercall" ] in
  (match Weird_machine.run_concrete m attack with
  | Weird_machine.Erroneous_reached label ->
      Printf.printf "concrete machine: inputs %s reach erroneous state %S\n"
        (String.concat "," attack) label
  | Weird_machine.Running s -> Printf.printf "concrete machine stopped in state %d\n" s);
  (match Weird_machine.abstract m ~inputs:attack with
  | Some a ->
      Printf.printf "abstraction: abusive functionality over inputs %s -> %S\n"
        (String.concat "," a.Weird_machine.abusive_input) a.Weird_machine.erroneous_label
  | None -> print_endline "no abstraction (inputs benign)");
  let all_inputs =
    [ attack; [ "a" ]; [ "b"; "c" ]; [ "a"; "b"; "c"; "a"; "b"; "crafted-hypercall" ] ]
  in
  Printf.printf "equivalence over %d input sequences: %b\n" (List.length all_inputs)
    (List.for_all (fun inputs -> Weird_machine.equivalent m ~inputs) all_inputs)

let fig4 () =
  hr "FIG 4 (experimental validation strategy: exploit vs injection on 4.6)";
  Printf.printf "%-14s %-24s %-24s %s\n" "use case" "exploit violations" "injection violations"
    "equivalent";
  List.iter
    (fun uc ->
      let e = Campaign.run uc Campaign.Real_exploit Version.V4_6 in
      let i = Campaign.run uc Campaign.Injection Version.V4_6 in
      let cls vs =
        match vs with
        | [] -> "none"
        | vs ->
            String.concat "+"
              (List.sort_uniq compare
                 (List.map
                    (fun v ->
                      match v with
                      | Monitor.Hypervisor_crash _ -> "crash"
                      | Monitor.Privilege_escalation _ -> "privesc"
                      | Monitor.Unauthorized_disclosure _ -> "disclosure"
                      | Monitor.Integrity_violation _ -> "integrity"
                      | Monitor.Guest_crash _ -> "guest-crash"
                      | Monitor.Availability_degradation _ -> "availability")
                    vs))
      in
      Printf.printf "%-14s %-24s %-24s %b\n" uc.Campaign.uc_name
        (cls e.Campaign.r_violations)
        (cls i.Campaign.r_violations)
        (Monitor.same_class e.Campaign.r_violations i.Campaign.r_violations
        && e.Campaign.r_state = i.Campaign.r_state))
    All.use_cases

let extensions () =
  hr "EXTENSIONS (beyond the paper's prototype)";
  print_endline
    (Random_campaign.render
       (Random_campaign.compare_versions ~seed:7L ~trials:200
          ~targets:Random_campaign.all_targets Version.all));
  print_newline ();
  print_endline (Ii_devicemodel.Venom_study.render (Ii_devicemodel.Venom_study.matrix ()));
  print_newline ();
  print_endline (Ii_devicemodel.Blk_study.render (Ii_devicemodel.Blk_study.matrix ()));
  print_newline ();
  (* the management-interface IM in one paragraph *)
  let tb = Testbed.create Version.V4_13 in
  let victim_id = Kernel.domid tb.Testbed.victim in
  let before = Monitor.snapshot tb in
  Xenstore.inject_write tb.Testbed.hv.Hv.xenstore
    (Xenstore.domain_path victim_id "memory/target")
    "40";
  Testbed.tick_all tb;
  let after = Monitor.snapshot tb in
  print_endline "Management-interface IM (tampered memory/target, victim balloons itself):";
  List.iter
    (fun v -> Printf.printf "  violation: %s\n" (Monitor.violation_to_string v))
    (Monitor.violations ~before ~after);
  print_newline ();
  print_endline (Ii_exploits.Defense_eval.render (Ii_exploits.Defense_eval.matrix ()));
  print_newline ();
  print_endline (Im_catalog.render ());
  print_newline ();
  print_endline (Ii_advisory.Field_study.render ());
  print_newline ();
  print_endline (Ii_exploits.Cross_system.render (Ii_exploits.Cross_system.run ()))

(* --- Bechamel timings --------------------------------------------------- *)

open Bechamel

let uc name = Option.get (All.find name)

let bench_tests =
  [
    (* one Test.make per table/figure, as the harness contract asks *)
    Test.make ~name:"table1/classify-corpus"
      (Staged.stage (fun () ->
           List.iter (fun e -> ignore (Ii_advisory.Classify.classify e)) Ii_advisory.Corpus.corpus));
    Test.make ~name:"table2/derive-ims"
      (Staged.stage (fun () ->
           List.iter
             (fun a ->
               List.iter
                 (fun b -> ignore (Intrusion_model.compatible a.Campaign.im b.Campaign.im))
                 All.use_cases)
             All.use_cases));
    Test.make ~name:"table3/injection-run"
      (let tb = Testbed.create Version.V4_8 in
       Staged.stage (fun () ->
           ignore (Campaign.run ~tb (uc "XSA-182-test") Campaign.Injection Version.V4_8)));
    Test.make ~name:"fig1/avi-chain"
      (Staged.stage (fun () -> ignore (Avi.run Avi.Correct Avi.venom_scenario)));
    Test.make ~name:"fig2/pipeline"
      (let tb = Testbed.create Version.V4_8 in
       Staged.stage (fun () ->
           Testbed.reset tb;
           let u = uc "XSA-182-test" in
           ignore (Pipeline.run tb ~im:u.Campaign.im ~inject:u.Campaign.run_injection)));
    Test.make ~name:"fig3/equivalence"
      (Staged.stage (fun () ->
           ignore
             (Weird_machine.equivalent Weird_machine.xsa_example
                ~inputs:[ "a"; "b"; "crafted-hypercall" ])));
    Test.make ~name:"fig4/rq1-validation"
      (Staged.stage (fun () ->
           let u = uc "XSA-212-crash" in
           let e = Campaign.run u Campaign.Real_exploit Version.V4_6 in
           let i = Campaign.run u Campaign.Injection Version.V4_6 in
           ignore (Monitor.same_class e.Campaign.r_violations i.Campaign.r_violations)));
    (* substrate ablations: the design choices DESIGN.md calls out *)
    Test.make ~name:"ablation/boot-hypervisor"
      (Staged.stage (fun () -> ignore (Hv.boot ~version:Version.V4_6 ~frames:512)));
    Test.make ~name:"ablation/build-domain"
      (let hv = ref (Hv.boot ~version:Version.V4_6 ~frames:4096) in
       Staged.stage (fun () ->
           if Phys_mem.free_frames !hv.Hv.mem < 128 then
             hv := Hv.boot ~version:Version.V4_6 ~frames:4096;
           ignore (Builder.create_domain !hv ~name:"bench" ~privileged:false ~pages:64)));
    Test.make ~name:"ablation/page-walk"
      (let tb = Testbed.create Version.V4_6 in
       let dom = Kernel.dom tb.Testbed.attacker in
       Staged.stage (fun () ->
           ignore
             (Paging.walk tb.Testbed.hv.Hv.mem ~cr3:dom.Domain.l4_mfn
                (Domain.kernel_vaddr_of_pfn 5))));
    Test.make ~name:"ablation/mmu-update-validated"
      (let tb = Testbed.create Version.V4_6 in
       let k = tb.Testbed.attacker in
       let l1 =
         match
           Paging.walk tb.Testbed.hv.Hv.mem ~cr3:(Kernel.dom k).Domain.l4_mfn
             (Domain.kernel_vaddr_of_pfn 0)
         with
         | Ok tr -> (List.nth tr.Paging.path 3).Paging.table_mfn
         | Error _ -> assert false
       in
       let mfn9 = Option.get (Domain.mfn_of_pfn (Kernel.dom k) 9) in
       let ptr = Int64.add (Addr.maddr_of_mfn l1) (Int64.of_int (8 * 9)) in
       let e = Pte.make ~mfn:mfn9 ~flags:[ Pte.Present; Pte.Rw; Pte.User ] in
       Staged.stage (fun () ->
           ignore (Kernel.hypercall_rc k (Hypercall.Mmu_update [ (ptr, e) ]))));
    Test.make ~name:"ablation/injector-write"
      (let tb = Testbed.create Version.V4_6 in
       let () = Injector.install tb.Testbed.hv in
       let k = tb.Testbed.attacker in
       let addr =
         Layout.directmap_of_maddr
           (Addr.maddr_of_mfn (Option.get (Domain.mfn_of_pfn (Kernel.dom k) 5)))
       in
       Staged.stage (fun () ->
           ignore (Injector.write_u64 k ~addr ~action:Injector.Arbitrary_write_linear 42L)));
    Test.make ~name:"ablation/pt-guard-audit"
      (let tb = Testbed.create Version.V4_6 in
       let guard = Pt_guard.deploy tb.Testbed.hv Pt_guard.Detect_only in
       Staged.stage (fun () -> ignore (Pt_guard.audit guard)));
    Test.make ~name:"ablation/snapshot-capture-restore"
      (Staged.stage (fun () ->
           let hv = Hv.boot ~version:Version.V4_8 ~frames:1024 in
           let g = Builder.create_domain hv ~name:"g" ~privileged:false ~pages:64 in
           let snap = Snapshot.capture hv g in
           ignore (Domctl.destroy hv g);
           ignore (Snapshot.restore hv snap)));
    Test.make ~name:"ablation/blk-ring-roundtrip"
      (let tb = Testbed.create Version.V4_13 in
       let dom0 = Kernel.dom tb.Testbed.dom0 in
       let be =
         Ii_devicemodel.Blkdev.create_backend tb.Testbed.hv ~backend_dom:dom0 ~off_by_one:false
       in
       let fe =
         match
           Ii_devicemodel.Blkdev.connect tb.Testbed.attacker ~backend_domid:dom0.Domain.id
             ~ring_pfn:45 ~data_pfn:46
         with
         | Ok fe -> fe
         | Error _ -> assert false
       in
       Staged.stage (fun () ->
           ignore (Ii_devicemodel.Blkdev.submit fe ~op:Ii_devicemodel.Blkdev.Ring.op_read ~sector:1);
           ignore (Ii_devicemodel.Blkdev.backend_poll be fe)));
    Test.make ~name:"ablation/xenstore-write-read"
      (let xs = Xenstore.create () in
       Staged.stage (fun () ->
           ignore (Xenstore.write xs ~caller:0 "/local/domain/1/bench" "v");
           ignore (Xenstore.read xs ~caller:0 "/local/domain/1/bench")));
    Test.make ~name:"ablation/random-campaign-30-trials"
      (Staged.stage (fun () ->
           ignore (Random_campaign.run ~seed:9L ~trials:30 Version.V4_8)));
    (* throughput-engine layers: each one of the campaign fast paths *)
    Test.make ~name:"perf/walk-uncached"
      (let tb = Testbed.create Version.V4_8 in
       let cr3 = (Kernel.dom tb.Testbed.attacker).Domain.l4_mfn in
       let va = Domain.kernel_vaddr_of_pfn 5 in
       Staged.stage (fun () ->
           ignore
             (Paging.translate tb.Testbed.hv.Hv.mem ~cr3 ~kind:Paging.Read ~user:false va)));
    Test.make ~name:"perf/walk-cached"
      (let tb = Testbed.create Version.V4_8 in
       let tlb = Paging.Tlb.create () in
       let cr3 = (Kernel.dom tb.Testbed.attacker).Domain.l4_mfn in
       let va = Domain.kernel_vaddr_of_pfn 5 in
       Staged.stage (fun () ->
           ignore
             (Paging.translate_cached tlb tb.Testbed.hv.Hv.mem ~cr3 ~kind:Paging.Read
                ~user:false va)));
    Test.make ~name:"perf/testbed-reset"
      (let tb = Testbed.create Version.V4_8 in
       Staged.stage (fun () -> Testbed.reset tb));
    Test.make ~name:"perf/bulk-read-4k"
      (let tb = Testbed.create Version.V4_8 in
       Staged.stage (fun () -> ignore (Phys_mem.read_bytes tb.Testbed.hv.Hv.mem 0x5000L 4096)));
    Test.make ~name:"perf/bulk-write-4k"
      (let tb = Testbed.create Version.V4_8 in
       let buf = Bytes.make 4096 'x' in
       Staged.stage (fun () -> Phys_mem.write_bytes tb.Testbed.hv.Hv.mem 0x5000L buf));
    Test.make ~name:"perf/alloc-free-churn"
      (let tb = Testbed.create Version.V4_8 in
       let mem = tb.Testbed.hv.Hv.mem in
       Staged.stage (fun () ->
           let mfns = Phys_mem.alloc_many mem Phys_mem.Xen 32 in
           List.iter (Phys_mem.free mem) mfns));
    Test.make ~name:"ablation/memory-scan-2048-frames"
      (let tb = Testbed.create Version.V4_6 in
       let () = Injector.install tb.Testbed.hv in
       let k = tb.Testbed.attacker in
       Staged.stage (fun () ->
           let n = Phys_mem.total_frames tb.Testbed.hv.Hv.mem in
           for mfn = 0 to n - 1 do
             ignore
               (Injector.read k
                  ~addr:(Addr.maddr_of_mfn mfn)
                  ~action:Injector.Arbitrary_read_physical ~len:16)
           done));
  ]

let run_benchmarks () =
  hr "Bechamel timings (one benchmark per table/figure + substrate ablations)";
  (* Bechamel disables automatic heap compaction (max_overhead = 1e6)
     for measurement stability and never restores it; a million-trial
     stream afterwards then fragments the major heap without bound
     (~10 GB, 2x slower). Save the caller's Gc params and restore them
     when the bechamel phase is done. *)
  let gc_params = Gc.get () in
  Fun.protect ~finally:(fun () -> Gc.set gc_params; Gc.compact ()) @@ fun () ->
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false ~kde:(Some 10) ()
  in
  let grouped = Test.make_grouped ~name:"xenrepro" ~fmt:"%s/%s" bench_tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols (List.hd instances) raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  Printf.printf "%-56s %16s %10s\n" "benchmark" "ns/run" "r^2";
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with Some [ e ] -> e | Some _ | None -> nan
      in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
      Printf.printf "%-56s %16.1f %10.4f\n" name estimate r2)
    rows

(* --- campaign throughput report ---------------------------------------
   Wall-clock timings of the throughput-engine layers (software TLB,
   O(dirty) reset, bulk copies, sharding) plus the end-to-end campaign,
   emitted as a table and optionally as JSON ([--json PATH]). Manual
   Unix.gettimeofday timing: these are one-shot seconds-scale numbers
   Bechamel's per-run OLS is the wrong tool for. *)

type metric = F of float | I of int | B of bool

let ns_per_call ~n f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    f ()
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n

let seconds f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Best of [reps]: one-shot wall-clock numbers at the few-ms scale carry
   allocator/GC warm-up noise; the minimum is the standard steady-state
   estimate. Returns the first run's result so determinism checks can
   still compare values. *)
let seconds_best ~reps f =
  let r, d0 = seconds f in
  let best = ref d0 in
  for _ = 2 to reps do
    let _, d = seconds f in
    if d < !best then best := d
  done;
  (r, !best)

let perf_report ?(full = false) ~trials () =
  let tb = Testbed.create Version.V4_8 in
  let hv = tb.Testbed.hv in
  let cr3 = (Kernel.dom tb.Testbed.attacker).Domain.l4_mfn in
  let va = Domain.kernel_vaddr_of_pfn 5 in
  (* layer 1: software TLB vs fresh walk *)
  let walk_uncached_ns =
    ns_per_call ~n:20_000 (fun () ->
        ignore (Paging.translate hv.Hv.mem ~cr3 ~kind:Paging.Read ~user:false va))
  in
  let tlb = Paging.Tlb.create () in
  let walk_cached_ns =
    ns_per_call ~n:20_000 (fun () ->
        ignore (Paging.translate_cached tlb hv.Hv.mem ~cr3 ~kind:Paging.Read ~user:false va))
  in
  let tlb_stats = Paging.Tlb.stats tlb in
  (* layer 2: O(dirty) reset vs full boot *)
  let create_ns = ns_per_call ~n:20 (fun () -> ignore (Testbed.create Version.V4_8)) in
  Injector.install hv;
  ignore (Injector.write_u64 tb.Testbed.attacker ~addr:0x9000L
            ~action:Injector.Arbitrary_write_physical 0xBEEFL);
  let dirty_before_reset = Phys_mem.dirty_count hv.Hv.mem in
  let reset_ns =
    ns_per_call ~n:200 (fun () ->
        (* dirty a page first so every iteration resets real work; the
           reset drops the injector registration, so re-install *)
        Injector.install hv;
        ignore (Injector.write_u64 tb.Testbed.attacker ~addr:0x9000L
                  ~action:Injector.Arbitrary_write_physical 0xBEEFL);
        Testbed.reset tb)
  in
  (* layer 3: bulk copies *)
  let buf = Bytes.make 4096 'x' in
  let bulk_read_ns =
    ns_per_call ~n:50_000 (fun () -> ignore (Phys_mem.read_bytes hv.Hv.mem 0x5000L 4096))
  in
  let bulk_write_ns =
    ns_per_call ~n:50_000 (fun () -> Phys_mem.write_bytes hv.Hv.mem 0x5000L buf)
  in
  Testbed.reset tb;
  (* layer 4 + end to end: the campaign pair. The sequential reference
     keeps the historical shape (one fresh boot, then reset per trial);
     the sharded run goes through the batching scheduler, whose workers
     fork COW testbeds from the warm template pool. [auto_workers]
     never oversubscribes the machine, so the pool's create-vs-fork
     margin is a lower bound on the win. *)
  ignore (Testbed.create_pooled Version.V4_8) (* warm the template *);
  let fork_ns = ns_per_call ~n:200 (fun () -> ignore (Testbed.create_pooled Version.V4_8)) in
  let campaign_workers = Shard.auto_workers () in
  ignore (Random_campaign.run ~seed:7L ~trials Version.V4_8);
  let seq, campaign_seq_s =
    seconds_best ~reps:3 (fun () -> Random_campaign.run ~seed:7L ~trials Version.V4_8)
  in
  let sharded, campaign_sharded_s =
    seconds_best ~reps:3 (fun () ->
        Campaign_scheduler.run ~seed:7L ~trials ~workers:campaign_workers [ Version.V4_8 ])
  in
  let campaign_identical = sharded = [ seq ] in
  let campaign_speedup = campaign_seq_s /. campaign_sharded_s in
  (* smallest trial count at which the scheduler already beats the
     sequential reference — the pool amortizes the boot from trial one,
     so this should sit at the bottom of the sweep *)
  let campaign_crossover_trials =
    let crosses t =
      let _, s = seconds_best ~reps:2 (fun () -> Random_campaign.run ~seed:7L ~trials:t Version.V4_8) in
      let _, p =
        seconds_best ~reps:2 (fun () ->
            Campaign_scheduler.run ~seed:7L ~trials:t ~workers:campaign_workers [ Version.V4_8 ])
      in
      p < s
    in
    match List.find_opt crosses [ 1; 2; 5; 10; 25; 50; 100; trials ] with
    | Some t -> t
    | None -> max_int
  in
  (* the million-trial shape (full bench only): streamed through
     [fold_init], so no per-trial row is ever materialized and peak heap
     stays flat in the trial count *)
  let campaign_1m_keys =
    if not full then []
    else begin
      Gc.compact ();
      let heap_before = (Gc.quick_stat ()).Gc.top_heap_words in
      let n_1m = 1_000_000 in
      let stats, s_1m =
        seconds (fun () ->
            Campaign_scheduler.run_streamed ~seed:7L ~trials:n_1m ~workers:campaign_workers
              [ Version.V4_8 ])
      in
      let heap_after = (Gc.quick_stat ()).Gc.top_heap_words in
      let tallied =
        List.fold_left (fun a (_, n) -> a + n) 0 (List.hd stats).Campaign_scheduler.st_tally
      in
      [
        ("campaign_1m_trials", I tallied);
        ("campaign_1m_trials_s", F s_1m);
        ("campaign_1m_trials_per_s", F (float_of_int tallied /. s_1m));
        ("campaign_1m_peak_heap_words", I heap_after);
        ("campaign_1m_heap_growth_words", I (heap_after - heap_before));
      ]
    end
  in
  List.iter (fun v -> ignore (Testbed.create_pooled v)) Version.all;
  let seq_m, matrix_seq_s =
    seconds (fun () ->
        Campaign.run_matrix All.use_cases ~versions:Version.all ~modes:[ Campaign.Injection ])
  in
  let par_m, matrix_sharded_s =
    seconds (fun () ->
        Campaign.run_matrix ~workers:campaign_workers ~pooled:true All.use_cases
          ~versions:Version.all ~modes:[ Campaign.Injection ])
  in
  let matrix_identical = seq_m = par_m in
  (* layer 5: the trace subsystem. Telemetry columns come from the
     always-on counters; the ring-on vs ring-off trial timing is the
     overhead contract (off must stay within noise of the pre-trace
     numbers, on is allowed to cost). *)
  let uc148 = Option.get (All.find "XSA-148-priv") in
  let tb_tr = Testbed.create Version.V4_6 in
  let row, trace_off_trial_s =
    seconds_best ~reps:5 (fun () ->
        Campaign.run ~tb:tb_tr uc148 Campaign.Injection Version.V4_6)
  in
  Trace.enable tb_tr.Testbed.hv.Hv.trace;
  let row_on, trace_on_trial_s =
    seconds_best ~reps:5 (fun () ->
        Campaign.run ~tb:tb_tr uc148 Campaign.Injection Version.V4_6)
  in
  Trace.disable tb_tr.Testbed.hv.Hv.trace;
  let tm = row.Campaign.r_telemetry in
  let telemetry_stable = tm = row_on.Campaign.r_telemetry in
  (* layer 6: the VMI detector suite and the shared metrics registry.
     Coverage latencies are deterministic (trace sequence deltas); the
     dispatch-cost histogram is wall-clock and lands in the registry
     alongside the detectors' scan-cost histogram. *)
  let registry = Metrics.create () in
  Campaign.publish registry row;
  Campaign.publish registry row_on;
  let vmi_trials =
    Vmi_driver.coverage ~registry All.use_cases Campaign.Injection Version.V4_6
  in
  let vmi_latency_keys =
    (* ns-denominated since schema 7 (virtual-clock deltas); the seq
       distance the old vmi_latency_* keys carried is still in the
       `xenrepro vmi --json` "latency" object *)
    List.map
      (fun t ->
        ( "vmi_latency_ns_" ^ t.Vmi_driver.t_recording.Trace_driver.rec_use_case,
          I
            (match Vmi_driver.best_latency_ns t with
            | Some l -> Int64.to_int l
            | None -> -1) ))
      vmi_trials
  in
  let vmi_detected_all = List.for_all Vmi_driver.covered vmi_trials in
  let vmi_scans = List.fold_left (fun a t -> a + t.Vmi_driver.t_scans) 0 vmi_trials in
  let vmi_frames =
    List.fold_left (fun a t -> a + t.Vmi_driver.t_frames_read) 0 vmi_trials
  in
  let vmi_clean = Vmi_driver.side_effect_free uc148 Campaign.Injection Version.V4_6 in
  let dispatch_h =
    Metrics.histogram registry ~help:"Injector hypercall dispatch cost (ns)"
      ~buckets:[ 100.; 300.; 1000.; 3000.; 10000. ]
      "hypercall_dispatch_ns"
  in
  let tb_d = Testbed.create Version.V4_6 in
  Injector.install tb_d.Testbed.hv;
  for _ = 1 to 2_000 do
    let t0 = Unix.gettimeofday () in
    ignore
      (Injector.read_u64 tb_d.Testbed.attacker ~addr:0x5000L
         ~action:Injector.Arbitrary_read_physical);
    Metrics.observe dispatch_h ((Unix.gettimeofday () -. t0) *. 1e9)
  done;
  let bucket_keys name h =
    List.map
      (fun (le, n) ->
        ( Printf.sprintf "%s_le_%s" name
            (if le = infinity then "inf" else Printf.sprintf "%.0f" le),
          I n ))
      (Metrics.bucket_counts h)
  in
  let scan_frames_h =
    Metrics.histogram registry ~buckets:Vmi.scan_buckets "vmi_scan_frames"
  in
  (* layer 7: the pluggable backends. The same injection trial timed
     through the substrate-generic engine on each backend, plus the
     KVM record/replay contract. *)
  let _, backend_xen_trial_s =
    seconds_best ~reps:5 (fun () ->
        Campaign.run ~tb:tb_tr uc148 Campaign.Injection Version.V4_6)
  in
  let kvm_tb = Ii_backends.Backend_kvm.create Ii_backends.Backend_kvm.Stock in
  let kvm_row, backend_kvm_trial_s =
    seconds_best ~reps:5 (fun () ->
        Ii_backends.Backends.Kvm_campaign.run ~tb:kvm_tb Ii_backends.Kvm_use_cases.vmcs_uc
          Campaign.Injection Ii_backends.Backend_kvm.Stock)
  in
  let kvm_replay_equal =
    let r =
      Ii_backends.Backends.Kvm_trace.record Ii_backends.Kvm_use_cases.idt_uc
        Campaign.Injection Ii_backends.Backend_kvm.Stock
    in
    (Ii_backends.Backends.Kvm_trace.replay r).Ii_backends.Backends.Kvm_trace.rp_equal
  in
  (* layer 8: the provenance shadow. Detached (the default) every hook
     is one option match, so the off timing must stay within noise of
     the plain trial above; attached is allowed to cost. The per-use-
     case edge/taint counts are deterministic. *)
  let tb_prov = Testbed.create Version.V4_6 in
  let _, prov_off_trial_s =
    seconds_best ~reps:5 (fun () ->
        Campaign.run ~tb:tb_prov uc148 Campaign.Injection Version.V4_6)
  in
  Substrate_xen.enable_provenance tb_prov;
  let _, prov_on_trial_s =
    seconds_best ~reps:5 (fun () ->
        Campaign.run ~tb:tb_prov uc148 Campaign.Injection Version.V4_6)
  in
  let prov_off_within_noise =
    prov_off_trial_s <= (2. *. trace_off_trial_s) +. 1e-4
  in
  (* layer 9: the virtual clock. A charge is one int64 add on the
     machine's clock (a single branch when detached), so the attached
     trial must stay within noise of the detached one; detaching never
     changes trial behaviour, only freezes r_vtime_ns at 0. *)
  let tb_vc = Testbed.create Version.V4_6 in
  let _, vclock_attached_trial_s =
    seconds_best ~reps:5 (fun () ->
        Campaign.run ~tb:tb_vc uc148 Campaign.Injection Version.V4_6)
  in
  Substrate_xen.set_vclock_attached tb_vc false;
  let _, vclock_detached_trial_s =
    seconds_best ~reps:5 (fun () ->
        Campaign.run ~tb:tb_vc uc148 Campaign.Injection Version.V4_6)
  in
  let vclock_within_noise =
    vclock_attached_trial_s <= (2. *. vclock_detached_trial_s) +. 1e-4
  in
  (* layer 11: coverage observability. Detached (the default) every
     producer is one option match; attached, a feed is a handful of FNV
     multiplies and one bit poke into a fixed 1328-byte map — both must
     stay within noise of the plain trial. The cumulative corpus map and
     the per-use-case novelty are deterministic and archived. *)
  let tb_cov = Testbed.create Version.V4_6 in
  let _, coverage_off_trial_s =
    seconds_best ~reps:5 (fun () ->
        Campaign.run ~tb:tb_cov uc148 Campaign.Injection Version.V4_6)
  in
  Trace.set_coverage tb_cov.Testbed.hv.Hv.trace (Some (Coverage.create ()));
  let _, coverage_on_trial_s =
    seconds_best ~reps:5 (fun () ->
        Campaign.run ~tb:tb_cov uc148 Campaign.Injection Version.V4_6)
  in
  let coverage_within_noise =
    coverage_on_trial_s <= (2. *. coverage_off_trial_s) +. 1e-4
  in
  let cov_acc = ref Coverage.empty in
  let cov_rows =
    Campaign.run_matrix ~coverage:cov_acc All.use_cases ~versions:[ Version.V4_6 ]
      ~modes:[ Campaign.Real_exploit; Campaign.Injection ]
  in
  (* one key per use case: bits the pair of trials (exploit + injection)
     added to the cumulative map on first sight *)
  let coverage_novelty_keys =
    List.rev
      (List.fold_left
         (fun acc r ->
           let key = "coverage_novelty_per_trial_" ^ r.Campaign.r_use_case in
           match List.assoc_opt key acc with
           | Some (I n) ->
               (key, I (n + r.Campaign.r_cov_novelty)) :: List.remove_assoc key acc
           | _ -> (key, I r.Campaign.r_cov_novelty) :: acc)
         [] cov_rows)
  in
  (* layer 10: multi-domain testbeds and background load. A loaded
     4-domain trial prices the workload generator: the hypercall surplus
     over the unloaded trial, divided by the loaded trial's wall time,
     is the background hypercall rate a campaign sustains. Detection
     latency is then re-measured with the extra domains live and the
     default mix running, so the archived numbers cover the same
     cross-domain configuration the CI gate exercises. *)
  let tb_md = Testbed.create ~domains:4 ~load:Load_mix.default Version.V4_6 in
  let row_md, load_trial_s =
    seconds_best ~reps:5 (fun () ->
        Campaign.run ~tb:tb_md uc148 Campaign.Injection Version.V4_6)
  in
  let load_hypercalls =
    Trace.total_hypercalls row_md.Campaign.r_telemetry - Trace.total_hypercalls tm
  in
  let load_hypercalls_per_s =
    if load_trial_s > 0. then float_of_int load_hypercalls /. load_trial_s else 0.
  in
  let crossdomain_trials =
    Vmi_driver.coverage ~domains:4 ~load:Load_mix.default All.use_cases
      Campaign.Injection Version.V4_6
  in
  let crossdomain_latency_keys =
    List.map
      (fun t ->
        ( "crossdomain_latency_ns_"
          ^ t.Vmi_driver.t_recording.Trace_driver.rec_use_case,
          I
            (match Vmi_driver.best_latency_ns t with
            | Some l -> Int64.to_int l
            | None -> -1) ))
      crossdomain_trials
  in
  let crossdomain_detected_all = List.for_all Vmi_driver.covered crossdomain_trials in
  (* the constants every virtual timestamp in this report derives from,
     echoed so an artifact is self-describing *)
  let cost_model_keys =
    List.map
      (fun (k, v) -> ("cost_model_" ^ k, I (Int64.to_int v)))
      (Vclock.Cost_model.to_assoc Vclock.Cost_model.default)
  in
  let xen_prov_keys =
    List.concat_map
      (fun u ->
        let tb = Testbed.create Version.V4_6 in
        Substrate_xen.enable_provenance tb;
        ignore (Campaign.run ~tb u Campaign.Injection Version.V4_6);
        let p = Option.get (Substrate_xen.provenance tb) in
        [
          ("prov_edges_" ^ u.Campaign.uc_name, I (Provenance.edge_count p));
          ("prov_tainted_bytes_" ^ u.Campaign.uc_name, I (Provenance.tainted_bytes p));
        ])
      All.use_cases
  in
  let kvm_prov_keys =
    List.concat_map
      (fun u ->
        let tb = Ii_backends.Backend_kvm.create Ii_backends.Backend_kvm.Stock in
        Ii_backends.Backend_kvm.enable_provenance tb;
        ignore
          (Ii_backends.Backends.Kvm_campaign.run ~tb u Campaign.Injection
             Ii_backends.Backend_kvm.Stock);
        let p = Option.get (Ii_backends.Backend_kvm.provenance tb) in
        let name = u.Ii_backends.Backends.Kvm_campaign.uc_name in
        [
          ("prov_edges_" ^ name, I (Provenance.edge_count p));
          ("prov_tainted_bytes_" ^ name, I (Provenance.tainted_bytes p));
        ])
      Ii_backends.Kvm_use_cases.use_cases
  in
  ( [
    ("schema_version", I 9);
    ("trials", I trials);
    ("walk_uncached_ns", F walk_uncached_ns);
    ("walk_cached_ns", F walk_cached_ns);
    ("tlb_hits", I tlb_stats.Paging.Tlb.hits);
    ("tlb_misses", I tlb_stats.Paging.Tlb.misses);
    ("testbed_create_ns", F create_ns);
    ("testbed_fork_ns", F fork_ns);
    ("testbed_reset_ns", F reset_ns);
    ("reset_dirty_frames", I dirty_before_reset);
    ("bulk_read_4k_ns", F bulk_read_ns);
    ("bulk_write_4k_ns", F bulk_write_ns);
    ("campaign_workers", I campaign_workers);
    ("campaign_sequential_s", F campaign_seq_s);
    ("campaign_sharded_s", F campaign_sharded_s);
    ("campaign_speedup", F campaign_speedup);
    ("campaign_crossover_trials", I campaign_crossover_trials);
    ("campaign_seq_shard_identical", B campaign_identical);
    ("run_matrix_sequential_s", F matrix_seq_s);
    ("run_matrix_sharded_s", F matrix_sharded_s);
    ("run_matrix_seq_shard_identical", B matrix_identical);
    ("trial_hypercalls", I (Trace.total_hypercalls tm));
    ("trial_hypercalls_failed", I tm.Trace.tm_hypercalls_failed);
    ("trial_faults", I tm.Trace.tm_faults);
    ("trial_flushes", I (tm.Trace.tm_flushes + tm.Trace.tm_invlpgs));
    ("trial_page_type_changes", I tm.Trace.tm_page_type_changes);
    ("trial_injector_accesses", I tm.Trace.tm_injector_accesses);
    ("trace_off_trial_s", F trace_off_trial_s);
    ("trace_on_trial_s", F trace_on_trial_s);
    ("trace_on_off_telemetry_identical", B telemetry_stable);
  ]
    @ vmi_latency_keys
    @ [
        ("vmi_detected_all", B vmi_detected_all);
        ("vmi_side_effect_free", B vmi_clean);
        ("vmi_scans_total", I vmi_scans);
        ("vmi_scan_frames_total", I vmi_frames);
      ]
    @ bucket_keys "vmi_scan_frames" scan_frames_h
    @ [ ("vmi_scan_frames_sum", F (Metrics.histogram_sum scan_frames_h)) ]
    @ bucket_keys "hypercall_dispatch_ns" dispatch_h
    @ [
        ("hypercall_dispatch_ns_count", I (Metrics.histogram_count dispatch_h));
        ("backend_xen_trial_s", F backend_xen_trial_s);
        ("backend_kvm_trial_s", F backend_kvm_trial_s);
        ("backend_kvm_state", B kvm_row.Ii_backends.Backends.Kvm_campaign.r_state);
        ("backend_kvm_replay_equal", B kvm_replay_equal);
      ]
    @ xen_prov_keys @ kvm_prov_keys
    @ [
        ("prov_overhead_off_trial_s", F prov_off_trial_s);
        ("prov_overhead_on_trial_s", F prov_on_trial_s);
        ("prov_overhead_off_within_noise", B prov_off_within_noise);
        ("vclock_overhead_attached_trial_s", F vclock_attached_trial_s);
        ("vclock_overhead_detached_trial_s", F vclock_detached_trial_s);
        ("vclock_overhead_within_noise", B vclock_within_noise);
        ("coverage_off_trial_s", F coverage_off_trial_s);
        ("coverage_on_trial_s", F coverage_on_trial_s);
        ("coverage_overhead_within_noise", B coverage_within_noise);
        ("coverage_bits_total", I (Coverage.popcount !cov_acc));
        ("load_domains", I 4);
        ("load_hypercalls_per_trial", I load_hypercalls);
        ("load_hypercalls_per_s", F load_hypercalls_per_s);
        ("crossdomain_detected_all", B crossdomain_detected_all);
      ]
    @ coverage_novelty_keys
    @ crossdomain_latency_keys
    @ cost_model_keys
    @ campaign_1m_keys,
    Metrics.render_prometheus registry )

let print_report report =
  hr "Campaign throughput engine (per-layer wall-clock timings)";
  List.iter
    (fun (k, v) ->
      match v with
      | F f -> Printf.printf "%-34s %14.1f\n" k f
      | I i -> Printf.printf "%-34s %14d\n" k i
      | B b -> Printf.printf "%-34s %14b\n" k b)
    report

let json_of_report report =
  let field (k, v) =
    let value =
      match v with
      | F f -> Printf.sprintf "%.4f" f
      | I i -> string_of_int i
      | B b -> string_of_bool b
    in
    Printf.sprintf "  %S: %s" k value
  in
  "{\n" ^ String.concat ",\n" (List.map field report) ^ "\n}\n"

let write_json path report =
  let oc = open_out path in
  output_string oc (json_of_report report);
  close_out oc;
  Printf.printf "wrote %s\n" path

let artefacts =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("extensions", extensions);
  ]

(* Parse [--json PATH] before any computation: a usage error after a
   minutes-long report run helps no one. *)
let json_path ~usage rest =
  match rest with
  | [ "--json"; path ] -> Some path
  | [] -> None
  | _ ->
      prerr_endline usage;
      exit 2

let () =
  match Array.to_list Sys.argv with
  | _ :: "bench" :: rest ->
      let json = json_path ~usage:"usage: main.exe bench [--json PATH]" rest in
      (* wall-clock report first: bechamel leaves the major heap ballooned
         (OCaml 5.1 cannot compact it back), which would double the
         million-trial stream's wall time and make its peak-heap key
         meaningless *)
      let report, prometheus = perf_report ~full:true ~trials:200 () in
      (* the report's million-trial stream leaves a large dead major
         heap; compact before bechamel samples so its baseline is the
         live set, not the report's garbage *)
      Gc.compact ();
      run_benchmarks ();
      print_report report;
      hr "Metrics registry (Prometheus exposition)";
      print_string prometheus;
      Option.iter (fun path -> write_json path report) json
  | _ :: "smoke" :: rest ->
      let json = json_path ~usage:"usage: main.exe smoke [--json PATH]" rest in
      (* the CI-sized variant: same layers and the full 200-trial
         campaign pair (the pool gate needs it), but no 1M stream *)
      let report, prometheus = perf_report ~trials:200 () in
      print_report report;
      hr "Metrics registry (Prometheus exposition)";
      print_string prometheus;
      Option.iter (fun path -> write_json path report) json
  | _ :: [ name ] when List.mem_assoc name artefacts -> (List.assoc name artefacts) ()
  | [ _ ] | _ :: [ "all" ] ->
      List.iter (fun (_, f) -> f ()) artefacts;
      let report = fst (perf_report ~trials:200 ()) in
      Gc.compact ();
      run_benchmarks ();
      print_report report
  | _ ->
      prerr_endline
        "usage: main.exe [all|bench|smoke|table1|table2|table3|fig1|fig2|fig3|fig4|extensions] \
         [--json PATH]";
      exit 2
